"""Simulation correctness harness: invariants, audits, and oracles.

This package is the sanitizer/race-detector analogue for the discrete-
event simulator: a runtime invariant layer (:class:`CheckedSimulator`,
conservation audits, TCP sender checks), differential and metamorphic
oracles (:mod:`~repro.simcheck.oracles`, driven by ``repro check``), and
a random-scenario generator (:mod:`~repro.simcheck.fuzz`) shared by the
CLI and the hypothesis property suite.

Checking is **off by default** and follows the telemetry enablement
contract exactly: when disabled, scenario code pays a single module
lookup and bool test per run — no wrapper objects, no per-event or
per-packet work.  Enable it process-wide with :func:`enable` (or the
``REPRO_SIMCHECK=1`` environment variable, which is how CI runs the
tier-1 suite in checked mode), or scoped with :func:`use`::

    from repro import simcheck

    with simcheck.use():
        run_cubic_experiment(...)   # runs on a CheckedSimulator
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from .checked import DEFAULT_HEAP_CHECK_INTERVAL, CheckedSimulator
from .conservation import (
    audit_host,
    audit_link,
    audit_queue,
    audit_router,
    audit_topology,
    fault_absorbed_packets,
)
from .tcpcheck import check_sender_invariants, checked_factory, install_sender_checks
from .violations import InvariantViolation, ViolationReport, record_violation

__all__ = [
    "CheckedSimulator",
    "DEFAULT_HEAP_CHECK_INTERVAL",
    "InvariantViolation",
    "ViolationReport",
    "audit_host",
    "audit_link",
    "audit_queue",
    "audit_router",
    "audit_topology",
    "check_sender_invariants",
    "checked_factory",
    "disable",
    "enable",
    "enabled",
    "fault_absorbed_packets",
    "install_sender_checks",
    "record_violation",
    "use",
]

#: Truthy values accepted for the REPRO_SIMCHECK environment variable.
_TRUTHY = {"1", "true", "yes", "on"}

_enabled: bool = os.environ.get("REPRO_SIMCHECK", "").strip().lower() in _TRUTHY


def enabled() -> bool:
    """Whether scenario runners should build checked simulations."""
    return _enabled


def enable() -> None:
    """Turn checked mode on process-wide (idempotent)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn checked mode off process-wide (idempotent)."""
    global _enabled
    _enabled = False


@contextmanager
def use(active: bool = True) -> Iterator[None]:
    """Scoped checked mode: set, run, restore the previous state."""
    global _enabled
    previous = _enabled
    _enabled = active
    try:
        yield
    finally:
        _enabled = previous

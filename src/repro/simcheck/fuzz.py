"""Deterministic random-scenario generation for the checked simulator.

One seed fully determines a scenario: a random dumbbell (sender count,
bandwidth, RTT, buffer), a random on/off workload, and a transport
flavour.  Running it under the invariant layer must produce zero
violations — that is the whole property.  The generator is shared by
``repro check --fuzz N`` and the hypothesis suite in
``tests/simcheck/test_properties.py`` (hypothesis feeds the seeds; the
scenario construction stays here so the CLI works without hypothesis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from ..simnet.engine import WatchdogConfig
from ..simnet.topology import DumbbellConfig
from ..transport.cubic import CubicParams
from ..workload.onoff import OnOffConfig
from .violations import ViolationReport

#: Event budget per fuzz case: far above anything these small scenarios
#: legitimately need, so a trip means a runaway loop, not a tight limit.
FUZZ_MAX_EVENTS = 5_000_000

_FLAVOURS = ("cubic", "newreno")


@dataclass(frozen=True)
class FuzzScenario:
    """A fully-drawn random scenario (deterministic in its seed)."""

    seed: int
    config: DumbbellConfig
    workload: OnOffConfig
    duration_s: float
    flavour: str
    params: CubicParams

    def as_dict(self) -> Dict[str, Any]:
        """Compact description for violation reports and CLI output."""
        return {
            "seed": self.seed,
            "n_senders": self.config.n_senders,
            "bottleneck_mbps": self.config.bottleneck_bandwidth_bps / 1e6,
            "rtt_ms": self.config.rtt_s * 1e3,
            "buffer_bdp_multiple": self.config.buffer_bdp_multiple,
            "mean_on_bytes": self.workload.mean_on_bytes,
            "mean_off_s": self.workload.mean_off_s,
            "duration_s": self.duration_s,
            "flavour": self.flavour,
            "beta": self.params.beta,
        }


def draw_scenario(seed: int) -> FuzzScenario:
    """Draw the scenario determined by ``seed``."""
    rng = np.random.default_rng(seed)
    config = DumbbellConfig(
        n_senders=int(rng.integers(1, 6)),
        bottleneck_bandwidth_bps=float(rng.uniform(2e6, 50e6)),
        rtt_s=float(rng.uniform(0.02, 0.3)),
        buffer_bdp_multiple=float(rng.uniform(0.5, 8.0)),
    )
    workload = OnOffConfig(
        mean_on_bytes=float(rng.uniform(20_000, 300_000)),
        mean_off_s=float(rng.uniform(0.05, 1.5)),
        start_jitter_s=float(rng.uniform(0.01, 1.0)),
    )
    params = CubicParams(
        window_init=float(rng.choice([1.0, 2.0, 4.0, 16.0])),
        initial_ssthresh=float(rng.choice([4.0, 32.0, 256.0, 65536.0])),
        beta=float(rng.uniform(0.1, 0.9)),
    )
    return FuzzScenario(
        seed=seed,
        config=config,
        workload=workload,
        duration_s=float(rng.uniform(3.0, 8.0)),
        flavour=str(rng.choice(_FLAVOURS)),
        params=params,
    )


def run_fuzz_case(
    scenario: FuzzScenario,
    check_report: Optional[ViolationReport] = None,
):
    """Run ``scenario`` on a checked simulator; returns the result.

    With ``check_report=None`` any invariant violation raises
    :class:`~repro.simcheck.InvariantViolation` straight out of the run.
    """
    # Imported lazily: the experiment stack imports simcheck, so pulling
    # it in at module load would be a cycle.
    from ..experiments.dumbbell import run_onoff_scenario, uniform_slots
    from ..phi.client import plain_cubic_factory
    from ..transport.cubic import NewRenoSender

    if scenario.flavour == "cubic":
        factory = plain_cubic_factory(scenario.params)
    else:

        def factory(sim, host, spec, flow_size_bytes, on_complete):
            return NewRenoSender(
                sim,
                host,
                spec,
                flow_size_bytes,
                on_complete,
                window_init=scenario.params.window_init,
                initial_ssthresh=scenario.params.initial_ssthresh,
            )
    return run_onoff_scenario(
        uniform_slots(lambda env: factory),
        config=scenario.config,
        workload=scenario.workload,
        duration_s=scenario.duration_s,
        seed=scenario.seed,
        watchdog=WatchdogConfig(max_events=FUZZ_MAX_EVENTS),
        checked=True,
        check_report=check_report,
    )

"""End-to-end packet and byte conservation audits.

Every packet offered to a link must be accounted for at all times:

- **queue law** (exact): ``enqueued == dequeued + flushed + queued``,
  in both packets and bytes (drops are counted before enqueue);
- **link transmitter law** (exact): ``offered == transmitted + queued +
  dropped + flushed + serializing`` where ``serializing`` is 1 packet
  when the transmitter is busy and 0 otherwise;
- **wire law** (inequality): ``transmitted - delivered - absorbed >= 0``
  — the residual is packets still propagating (in flight on the wire)
  or parked by a :class:`~repro.simnet.faults.DelaySpike`; ``absorbed``
  counts packets consumed by link faults (outages, flaps, random loss).
  The law is exact (residual == 0) only on a drained wire, which a run
  stopped at ``until=duration`` does not guarantee;
- **router law** (exact): ``received == forwarded + unroutable``;
- **host law** (inequality): ``discarded <= received`` (handled packets
  are dispatched to agents, which keep their own transport accounting).

Audits are cheap (counter arithmetic over existing ledgers — no
per-packet work), so they run after every checked scenario.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..simnet.faults import LinkFault
from ..simnet.link import Link
from ..simnet.node import Host, Router
from ..simnet.queues import DropTailQueue
from .violations import InvariantViolation, ViolationReport, record_violation


def audit_queue(
    queue: DropTailQueue,
    name: str,
    sim_time: float = 0.0,
    report: Optional[ViolationReport] = None,
) -> None:
    """Check the exact queue conservation law (packets and bytes)."""
    stats = queue.stats
    queued_packets = len(queue)
    queued_bytes = queue.bytes_queued
    packet_residual = (
        stats.enqueued_packets
        - stats.dequeued_packets
        - stats.flushed_packets
        - queued_packets
    )
    if packet_residual != 0:
        record_violation(
            InvariantViolation(
                "conservation.queue_packets",
                name,
                f"enqueued {stats.enqueued_packets} != dequeued "
                f"{stats.dequeued_packets} + flushed {stats.flushed_packets} "
                f"+ queued {queued_packets}",
                sim_time=sim_time,
                details={"residual_packets": packet_residual},
            ),
            report,
        )
    byte_residual = (
        stats.enqueued_bytes
        - stats.dequeued_bytes
        - stats.flushed_bytes
        - queued_bytes
    )
    if byte_residual != 0:
        record_violation(
            InvariantViolation(
                "conservation.queue_bytes",
                name,
                f"enqueued {stats.enqueued_bytes}B != dequeued "
                f"{stats.dequeued_bytes}B + flushed {stats.flushed_bytes}B "
                f"+ queued {queued_bytes}B",
                sim_time=sim_time,
                details={"residual_bytes": byte_residual},
            ),
            report,
        )
    if report is not None:
        report.counted(2)


def fault_absorbed_packets(link: Link, faults: Iterable[object] = ()) -> int:
    """Packets consumed by link faults attributable to ``link``.

    Counts black holes (outages, flaps) and random loss; packets parked
    by a delay spike are *not* absorbed — they are in flight and will
    resurface, which is why the wire law stays an inequality on links
    that ever carried a spike.
    """
    absorbed = 0
    for fault in faults:
        if isinstance(fault, LinkFault) and fault.link is link:
            absorbed += getattr(fault, "packets_blackholed", 0)
            absorbed += getattr(fault, "packets_dropped", 0)
    return absorbed


def audit_link(
    link: Link,
    sim_time: float = 0.0,
    faults: Iterable[object] = (),
    report: Optional[ViolationReport] = None,
) -> None:
    """Check the link transmitter (exact) and wire (inequality) laws."""
    audit_queue(link.queue, f"{link.name}.queue", sim_time, report)

    queued_packets = len(link.queue)
    queued_bytes = link.queue.bytes_queued
    stats = link.queue.stats
    serializing = 1 if link.is_busy else 0
    packet_residual = (
        link.packets_offered
        - link.packets_transmitted
        - queued_packets
        - stats.dropped_packets
        - stats.flushed_packets
        - serializing
    )
    if packet_residual != 0:
        record_violation(
            InvariantViolation(
                "conservation.link_packets",
                link.name,
                f"offered {link.packets_offered} != transmitted "
                f"{link.packets_transmitted} + queued {queued_packets} "
                f"+ dropped {stats.dropped_packets} + flushed "
                f"{stats.flushed_packets} + serializing {serializing}",
                sim_time=sim_time,
                details={"residual_packets": packet_residual},
            ),
            report,
        )
    # Bytes: the serializing packet's size isn't tracked separately, so
    # the byte residual must equal zero when idle and be positive (the
    # packet on the wire) when busy.
    byte_residual = (
        link.bytes_offered
        - link.bytes_transmitted
        - queued_bytes
        - stats.dropped_bytes
        - stats.flushed_bytes
    )
    byte_law_broken = byte_residual < 0 or (byte_residual == 0) == link.is_busy
    if byte_law_broken:
        record_violation(
            InvariantViolation(
                "conservation.link_bytes",
                link.name,
                f"byte residual {byte_residual} inconsistent with "
                f"transmitter busy={link.is_busy}",
                sim_time=sim_time,
                details={"residual_bytes": byte_residual},
            ),
            report,
        )

    absorbed = fault_absorbed_packets(link, faults)
    wire_residual = link.packets_transmitted - link.packets_delivered - absorbed
    if wire_residual < 0:
        record_violation(
            InvariantViolation(
                "conservation.link_wire",
                link.name,
                f"delivered {link.packets_delivered} + fault-absorbed "
                f"{absorbed} exceeds transmitted {link.packets_transmitted}",
                sim_time=sim_time,
                details={"wire_residual": wire_residual},
            ),
            report,
        )
    if report is not None:
        report.counted(3)


def audit_router(
    router: Router,
    sim_time: float = 0.0,
    report: Optional[ViolationReport] = None,
) -> None:
    """Check the exact router law: received == forwarded + unroutable."""
    residual = (
        router.packets_received
        - router.packets_forwarded
        - router.packets_unroutable
    )
    if residual != 0:
        record_violation(
            InvariantViolation(
                "conservation.router",
                router.name,
                f"received {router.packets_received} != forwarded "
                f"{router.packets_forwarded} + unroutable "
                f"{router.packets_unroutable}",
                sim_time=sim_time,
                details={"residual_packets": residual},
            ),
            report,
        )
    if report is not None:
        report.counted(1)


def audit_host(
    host: Host,
    sim_time: float = 0.0,
    report: Optional[ViolationReport] = None,
) -> None:
    """Check the host law: discarded packets never exceed received."""
    if host.packets_discarded > host.packets_received:
        record_violation(
            InvariantViolation(
                "conservation.host",
                host.name,
                f"discarded {host.packets_discarded} > received "
                f"{host.packets_received}",
                sim_time=sim_time,
                details={
                    "received": host.packets_received,
                    "discarded": host.packets_discarded,
                },
            ),
            report,
        )
    if report is not None:
        report.counted(1)


def audit_topology(
    topology,
    sim_time: float = 0.0,
    faults: Iterable[object] = (),
    report: Optional[ViolationReport] = None,
) -> None:
    """Audit every link, router, and host of a dumbbell-like topology.

    Works for anything exposing ``links`` (name -> Link mapping or an
    iterable of links) plus optional ``senders``/``receivers`` host lists
    and ``left_router``/``right_router``/``routers`` attributes.
    """
    links = topology.links
    link_iter = links.values() if hasattr(links, "values") else links
    for link in link_iter:
        audit_link(link, sim_time, faults, report)
    routers = list(getattr(topology, "routers", []))
    for attr in ("left_router", "right_router"):
        router = getattr(topology, attr, None)
        if router is not None:
            routers.append(router)
    for router in routers:
        audit_router(router, sim_time, report)
    for host in (*getattr(topology, "senders", []), *getattr(topology, "receivers", [])):
        audit_host(host, sim_time, report)

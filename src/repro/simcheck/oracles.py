"""Differential and metamorphic oracles for the simulation stack.

Each oracle replays a canonical scenario two ways that *must* agree —
bit-for-bit for the differential pairs, within declared tolerances for
the metamorphic transforms — and reports what it compared:

- **checked vs unchecked**: the :class:`~repro.simcheck.CheckedSimulator`
  must not perturb a single bit of the simulation outcome;
- **flow-start permutation**: constructing the per-slot sources in a
  different order (identical per-slot seeds) must not change results;
- **serial vs parallel**: the sweep runner's pool must be bit-identical
  to its single-process baseline;
- **grid permutation**: sweeping a permuted grid must produce the same
  per-key results;
- **time dilation** (fixed-BDP rescale): dividing bandwidth by ``k`` and
  multiplying every time constant by ``k`` keeps the bandwidth-delay
  product fixed, so throughput scales by ``1/k``, delays by ``k``, the
  power metric P_l by ``1/k^2``, and dimensionless outcomes (loss rate,
  utilization, connection count) stay put.  With a power-of-two ``k``
  every scaled float is exact, so the only divergence source is the
  *unscaled* RTO floor/initial constants (RFC 6298) — the declared
  tolerances below absorb it;
- **unit rescale**: re-expressing throughput/delay in different units
  multiplies every P_l by one constant, so P_l *ratios* between
  operating points are invariant;
- **replication identity**: the replicated control plane collapsed to a
  single replica must be bit-identical (events included) to the plain
  single-server stack;
- **replica convergence**: a healed partition's divergence must fall
  below epsilon within a bounded number of anti-entropy rounds and stay
  there.

This module intentionally lives outside the ``repro.simcheck`` package
``__init__`` import graph: it imports the experiment and runner layers,
which themselves import ``repro.simcheck``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from ..experiments.degraded import run_degraded_phi_cubic
from ..experiments.dumbbell import ScenarioResult
from ..experiments.partitioned import run_partitioned_phi_cubic
from ..experiments.scenarios import (
    FIG2A_LOW_UTILIZATION,
    TABLE3_REMY,
    ScenarioPreset,
    run_cubic_fixed,
)
from ..metrics.power import power_with_loss
from ..phi.policy import REFERENCE_POLICY
from ..phi.replication import ReplicatedContextService, ReplicationConfig
from ..phi.server import ConnectionReport
from ..runner import NullCache, SweepRunner
from ..simnet.engine import Simulator
from ..transport.cubic import CubicParams
from ..workload.onoff import OnOffConfig
from .violations import ViolationReport

#: Declared tolerances for the time-dilation oracle.  The simulation
#: rescales exactly (power-of-two k) except where the RFC 6298 RTO
#: floor/initial constants enter; these bounds absorb that divergence.
TIME_DILATION_REL_TOL = 0.05
TIME_DILATION_LOSS_ABS_TOL = 0.005

#: Tolerance for the unit-rescale ratio invariance (pure float rounding).
UNIT_RESCALE_REL_TOL = 1e-9

#: Reduced sweep grid for the runner oracles: enough points to exercise
#: ordering and merge paths without dominating wall time.
_ORACLE_GRID = (
    CubicParams.default(),
    CubicParams(window_init=4.0, initial_ssthresh=32.0, beta=0.5),
    CubicParams(window_init=2.0, initial_ssthresh=8.0, beta=0.3),
)


@dataclass
class OracleOutcome:
    """One oracle's verdict: what it compared and every mismatch found."""

    name: str
    passed: bool
    failures: List[str] = field(default_factory=list)
    details: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "passed": self.passed,
            "failures": list(self.failures),
            "details": dict(self.details),
        }


def _compare_scenarios(a: ScenarioResult, b: ScenarioResult) -> List[str]:
    """Bit-identity failures between two scenario results (empty = equal)."""
    from ..runner.records import flow_records

    failures: List[str] = []
    if a.metrics != b.metrics:
        failures.append(f"metrics differ: {a.metrics} vs {b.metrics}")
    if a.bottleneck_drop_rate != b.bottleneck_drop_rate:
        failures.append(
            f"drop rate differs: {a.bottleneck_drop_rate} vs {b.bottleneck_drop_rate}"
        )
    if a.mean_utilization != b.mean_utilization:
        failures.append(
            f"utilization differs: {a.mean_utilization} vs {b.mean_utilization}"
        )
    flows_a = flow_records(a.per_sender_stats)
    flows_b = flow_records(b.per_sender_stats)
    if len(flows_a) != len(flows_b):
        failures.append(f"flow count differs: {len(flows_a)} vs {len(flows_b)}")
    else:
        for fa, fb in zip(flows_a, flows_b):
            if fa != fb:
                failures.append(f"flow {fa.flow_id} differs: {fa} vs {fb}")
                break
    return failures


def oracle_checked_vs_unchecked(
    preset: ScenarioPreset = TABLE3_REMY,
    duration_s: float = 10.0,
    seed: int = 0,
) -> OracleOutcome:
    """The invariant layer must not change a single output bit."""
    plain = run_cubic_fixed(
        CubicParams.default(), preset, seed=seed, duration_s=duration_s, checked=False
    )
    report = ViolationReport()
    checked = run_cubic_fixed(
        CubicParams.default(),
        preset,
        seed=seed,
        duration_s=duration_s,
        checked=True,
        check_report=report,
    )
    failures = _compare_scenarios(plain, checked)
    for violation in report.violations:
        failures.append(f"invariant violation under checked run: {violation}")
    return OracleOutcome(
        name="checked-vs-unchecked",
        passed=not failures,
        failures=failures,
        details={
            "connections": plain.connections,
            "checks_performed": report.checks_performed,
        },
    )


def oracle_flow_permutation(
    preset: ScenarioPreset = TABLE3_REMY,
    duration_s: float = 10.0,
    seed: int = 0,
    slot_order: Optional[Sequence[int]] = None,
) -> OracleOutcome:
    """Permuting source construction order must not change results.

    Every slot's RNG stream is keyed by its index, so construction order
    only permutes event-queue insertion sequence numbers — which must be
    invisible as long as no two slots tie on an event timestamp.
    """
    if preset.workload is None:
        raise ValueError("flow permutation oracle needs an on/off preset")
    n = preset.config.n_senders
    if slot_order is None:
        # A fixed full derangement: reversal moves every slot when n > 1.
        slot_order = list(reversed(range(n)))
    baseline = run_cubic_fixed(
        CubicParams.default(), preset, seed=seed, duration_s=duration_s
    )
    permuted = run_cubic_fixed(
        CubicParams.default(),
        preset,
        seed=seed,
        duration_s=duration_s,
        slot_order=slot_order,
    )
    failures = _compare_scenarios(baseline, permuted)
    return OracleOutcome(
        name="flow-permutation",
        passed=not failures,
        failures=failures,
        details={"slot_order": list(slot_order), "connections": baseline.connections},
    )


def _sweep(
    preset: ScenarioPreset,
    duration_s: float,
    seed: int,
    grid: Sequence[CubicParams],
    workers: int,
    parallel: bool,
):
    runner = SweepRunner(
        preset, duration_s=duration_s, n_workers=workers, cache=NullCache()
    )
    if parallel:
        return runner.run(grid, n_runs=2, base_seed=seed)
    return runner.run_serial(grid, n_runs=2, base_seed=seed)


def oracle_serial_vs_parallel(
    preset: ScenarioPreset = TABLE3_REMY,
    duration_s: float = 5.0,
    seed: int = 0,
    workers: int = 2,
) -> OracleOutcome:
    """The worker pool must be bit-identical to the serial baseline."""
    serial = _sweep(preset, duration_s, seed, _ORACLE_GRID, 1, parallel=False)
    parallel = _sweep(preset, duration_s, seed, _ORACLE_GRID, workers, parallel=True)
    failures: List[str] = []
    if len(serial.points) != len(parallel.points):
        failures.append(
            f"result count differs: {len(serial.points)} vs {len(parallel.points)}"
        )
    else:
        for index, (a, b) in enumerate(zip(serial.points, parallel.points)):
            if not a.identical_to(b):
                failures.append(f"point {index} (key {a.key[:12]}…) differs")
    return OracleOutcome(
        name="serial-vs-parallel",
        passed=not failures,
        failures=failures,
        details={"points": len(serial.points), "workers": workers},
    )


def oracle_grid_permutation(
    preset: ScenarioPreset = TABLE3_REMY,
    duration_s: float = 5.0,
    seed: int = 0,
) -> OracleOutcome:
    """Sweeping a permuted grid must give the same per-key results."""
    forward = _sweep(preset, duration_s, seed, _ORACLE_GRID, 1, parallel=False)
    reversed_grid = tuple(reversed(_ORACLE_GRID))
    backward = _sweep(preset, duration_s, seed, reversed_grid, 1, parallel=False)
    failures: List[str] = []
    by_key = {result.key: result for result in backward.points}
    for result in forward.points:
        other = by_key.get(result.key)
        if other is None:
            failures.append(f"key {result.key[:12]}… missing from permuted sweep")
        elif not result.identical_to(other):
            failures.append(f"key {result.key[:12]}… differs across grid orders")
    return OracleOutcome(
        name="grid-permutation",
        passed=not failures,
        failures=failures,
        details={"points": len(forward.points)},
    )


def dilated_preset(preset: ScenarioPreset, k: float) -> ScenarioPreset:
    """``preset`` rescaled by time factor ``k`` at fixed BDP.

    Bandwidths divide by ``k``; every time constant (RTT, off periods,
    start jitter, duration) multiplies by ``k``.  Byte quantities are
    untouched, so bandwidth x delay — and with it the buffer in bytes —
    is invariant.
    """
    if preset.workload is None:
        raise ValueError("time dilation oracle needs an on/off preset")
    config = replace(
        preset.config,
        bottleneck_bandwidth_bps=preset.config.bottleneck_bandwidth_bps / k,
        access_bandwidth_bps=preset.config.access_bandwidth_bps / k,
        rtt_s=preset.config.rtt_s * k,
    )
    workload = replace(
        preset.workload,
        mean_off_s=preset.workload.mean_off_s * k,
        start_jitter_s=preset.workload.start_jitter_s * k,
    )
    return replace(
        preset,
        name=f"{preset.name}-dilated-{k:g}x",
        config=config,
        workload=workload,
        duration_s=preset.duration_s * k,
    )


def _rel_err(observed: float, expected: float) -> float:
    if expected == 0.0:
        return abs(observed)
    return abs(observed - expected) / abs(expected)


def oracle_time_dilation(
    preset: ScenarioPreset = TABLE3_REMY,
    duration_s: float = 10.0,
    seed: int = 0,
    k: float = 2.0,
) -> OracleOutcome:
    """Fixed-BDP rescale: r -> r/k, d -> d*k, P_l -> P_l/k^2."""
    baseline = run_cubic_fixed(
        CubicParams.default(), preset, seed=seed, duration_s=duration_s
    )
    scaled_preset = dilated_preset(replace(preset, duration_s=duration_s), k)
    scaled = run_cubic_fixed(
        CubicParams.default(),
        scaled_preset,
        seed=seed,
        duration_s=scaled_preset.duration_s,
        monitor_period_s=0.1 * k,
    )
    failures: List[str] = []
    checks = {
        "throughput_mbps": (
            scaled.metrics.throughput_mbps,
            baseline.metrics.throughput_mbps / k,
        ),
        "queueing_delay_ms": (
            scaled.metrics.queueing_delay_ms,
            baseline.metrics.queueing_delay_ms * k,
        ),
        "mean_rtt_ms": (scaled.metrics.mean_rtt_ms, baseline.metrics.mean_rtt_ms * k),
        "mean_utilization": (
            scaled.metrics.mean_utilization,
            baseline.metrics.mean_utilization,
        ),
    }
    errors: Dict[str, float] = {}
    for label, (observed, expected) in checks.items():
        err = _rel_err(observed, expected)
        errors[label] = err
        if err > TIME_DILATION_REL_TOL:
            failures.append(
                f"{label}: observed {observed:.6g}, predicted {expected:.6g} "
                f"(rel err {err:.3g} > {TIME_DILATION_REL_TOL})"
            )
    loss_diff = abs(scaled.metrics.loss_rate - baseline.metrics.loss_rate)
    errors["loss_rate"] = loss_diff
    if loss_diff > TIME_DILATION_LOSS_ABS_TOL:
        failures.append(
            f"loss_rate: {scaled.metrics.loss_rate:.6g} vs "
            f"{baseline.metrics.loss_rate:.6g} (abs diff {loss_diff:.3g})"
        )
    base_power = power_with_loss(
        baseline.metrics.throughput_mbps,
        baseline.metrics.queueing_delay_ms,
        baseline.metrics.loss_rate,
    )
    scaled_power = power_with_loss(
        scaled.metrics.throughput_mbps,
        scaled.metrics.queueing_delay_ms,
        scaled.metrics.loss_rate,
    )
    power_err = _rel_err(scaled_power, base_power / (k * k))
    errors["power"] = power_err
    if power_err > TIME_DILATION_REL_TOL:
        failures.append(
            f"P_l: observed {scaled_power:.6g}, predicted "
            f"{base_power / (k * k):.6g} (rel err {power_err:.3g})"
        )
    return OracleOutcome(
        name="time-dilation",
        passed=not failures,
        failures=failures,
        details={"k": k, "relative_errors": errors},
    )


def oracle_unit_rescale() -> OracleOutcome:
    """Unit changes scale every P_l equally, so P_l ratios are invariant."""
    operating_points = [
        (1.2, 37.0, 0.0),
        (4.5, 58.5, 0.013),
        (12.0, 141.0, 0.08),
        (0.31, 9.25, 0.002),
    ]
    # (throughput scale, delay scale): e.g. Mbit/s -> kbit/s, ms -> s.
    unit_scales = [(1e3, 1.0), (1.0, 10.0), (8.0, 0.25), (1e3, 10.0)]
    base = [power_with_loss(r, d, l) for r, d, l in operating_points]
    failures: List[str] = []
    worst = 0.0
    for r_scale, d_scale in unit_scales:
        rescaled = [
            power_with_loss(r * r_scale, d * d_scale, l)
            for r, d, l in operating_points
        ]
        for i in range(len(operating_points)):
            for j in range(i + 1, len(operating_points)):
                expected = base[i] / base[j]
                observed = rescaled[i] / rescaled[j]
                err = _rel_err(observed, expected)
                worst = max(worst, err)
                if err > UNIT_RESCALE_REL_TOL:
                    failures.append(
                        f"P_l ratio {i}/{j} drifts under unit scale "
                        f"({r_scale}, {d_scale}): {observed!r} vs {expected!r}"
                    )
    return OracleOutcome(
        name="unit-rescale",
        passed=not failures,
        failures=failures,
        details={"worst_relative_error": worst},
    )


#: Divergence below this is "converged" for the replica-convergence
#: oracle: replicated estimators reconcile to float-rounding agreement.
CONVERGENCE_EPSILON = 1e-6

#: Anti-entropy rounds a healed component gets to reconverge before the
#: oracle calls it divergent.
CONVERGENCE_ROUNDS = 3


def oracle_replication_identity(
    preset: ScenarioPreset = FIG2A_LOW_UTILIZATION,
    duration_s: float = 10.0,
    seed: int = 0,
) -> OracleOutcome:
    """An N=1 replicated control plane is the single-server plane, exactly.

    The full PR 1 degradation stack with one :class:`ContextServer`
    behind one :class:`ControlChannel` (``run_degraded_phi_cubic`` at
    zero unavailability) and the replicated stack collapsed to one
    replica (``run_partitioned_phi_cubic`` at ``n_replicas=1``, severity
    0 — replica handle, failover channel, anti-entropy machinery all
    present but with nothing to do) must agree bit-for-bit, *including
    the event count*: the replication layer schedules no anti-entropy
    ticks for a single replica, and jitters draw only on failure paths.
    """
    single = run_degraded_phi_cubic(
        REFERENCE_POLICY, preset, unavailability=0.0,
        seed=seed, duration_s=duration_s,
    )
    replicated = run_partitioned_phi_cubic(
        REFERENCE_POLICY, preset, n_replicas=1, severity=0.0,
        seed=seed, duration_s=duration_s,
    )
    failures = _compare_scenarios(single.result, replicated.result)
    if single.result.events_processed != replicated.result.events_processed:
        failures.append(
            f"event count differs: {single.result.events_processed} vs "
            f"{replicated.result.events_processed}"
        )
    if single.decision_counts != replicated.decision_counts:
        failures.append(
            f"decision counts differ: {single.decision_counts} vs "
            f"{replicated.decision_counts}"
        )
    return OracleOutcome(
        name="replication-identity",
        passed=not failures,
        failures=failures,
        details={
            "events": single.result.events_processed,
            "decisions": dict(single.decision_counts),
        },
    )


def oracle_replica_convergence(
    duration_s: float = 10.0,
    seed: int = 0,
    n_replicas: int = 3,
    period_s: float = 1.0,
    epsilon: float = CONVERGENCE_EPSILON,
    rounds: int = CONVERGENCE_ROUNDS,
) -> OracleOutcome:
    """Post-heal anti-entropy drives replica divergence below epsilon.

    One replica is severed from its peers while divergent traffic
    reports land on the majority side; divergence must be visible while
    the partition stands, then fall below ``epsilon`` within ``rounds``
    anti-entropy periods of the heal — the bounded-convergence guarantee
    the X7 experiment leans on.  Deterministic: no RNG is involved, so
    ``seed`` only labels the outcome.
    """
    sim = Simulator()
    capacity_bps = 10e6
    service = ReplicatedContextService(
        sim,
        capacity_bps,
        config=ReplicationConfig(
            n_replicas=n_replicas, anti_entropy_period_s=period_s
        ),
    )
    isolated = n_replicas - 1
    for peer in range(isolated):
        service.sever(peer, isolated)

    def feed(flow_id: int) -> None:
        # ~2 Mbps of goodput per report, all landing on replica 0: the
        # majority's utilization estimate rises, the isolated replica's
        # stays at zero.
        service.handle(0).report(
            ConnectionReport(
                flow_id=flow_id,
                reported_at=sim.now,
                bytes_transferred=250_000,
                duration_s=1.0,
                mean_rtt_s=0.05,
                min_rtt_s=0.04,
                loss_indicator=0.0,
            )
        )

    partition_end_s = duration_s / 2
    feed_count = max(2, int(partition_end_s) - 1)
    for index in range(feed_count):
        sim.schedule_at(0.5 + index, feed, index + 1)

    def heal() -> None:
        for peer in range(isolated):
            service.heal(peer, isolated)

    sim.schedule_at(partition_end_s, heal)
    sim.run(until=duration_s)

    failures: List[str] = []
    during = [
        d for t, d in service.divergence_history
        if t <= partition_end_s
    ]
    if not during or max(during) <= epsilon:
        failures.append(
            f"no divergence observed during the partition "
            f"(max {max(during) if during else 0.0:g}); oracle has no signal"
        )
    deadline = partition_end_s + rounds * period_s
    post_deadline = [
        (t, d) for t, d in service.divergence_history if t > deadline
    ]
    converged_by = next(
        (
            t for t, d in service.divergence_history
            if t > partition_end_s and d <= epsilon
        ),
        None,
    )
    if converged_by is None or converged_by > deadline:
        failures.append(
            f"divergence not below {epsilon:g} within {rounds} rounds of the "
            f"heal (deadline t={deadline:g}, converged at {converged_by})"
        )
    for t, d in post_deadline:
        if d > epsilon:
            failures.append(
                f"divergence re-opened after convergence: {d:g} at t={t:g}"
            )
            break
    final = service.replica_divergence()
    if final > epsilon:
        failures.append(f"final divergence {final:g} > {epsilon:g}")
    if service.anti_entropy_merges == 0 or service.reports_replicated == 0:
        failures.append(
            f"anti-entropy did no work: merges={service.anti_entropy_merges} "
            f"reports_replicated={service.reports_replicated}"
        )
    return OracleOutcome(
        name="replica-convergence",
        passed=not failures,
        failures=failures,
        details={
            "max_divergence": max(during) if during else 0.0,
            "converged_at": converged_by,
            "deadline": deadline,
            "anti_entropy_merges": service.anti_entropy_merges,
            "reports_replicated": service.reports_replicated,
        },
    )


#: Oracle registry for the CLI: name -> zero-config callable.
ORACLES = {
    "checked-vs-unchecked": oracle_checked_vs_unchecked,
    "flow-permutation": oracle_flow_permutation,
    "serial-vs-parallel": oracle_serial_vs_parallel,
    "grid-permutation": oracle_grid_permutation,
    "time-dilation": oracle_time_dilation,
    "unit-rescale": oracle_unit_rescale,
    "replication-identity": oracle_replication_identity,
    "replica-convergence": oracle_replica_convergence,
}


def run_oracles(
    names: Optional[Sequence[str]] = None,
    duration_s: float = 10.0,
    seed: int = 0,
) -> List[OracleOutcome]:
    """Run the selected oracles (all by default) and return their outcomes."""
    selected = list(ORACLES) if not names else list(names)
    outcomes: List[OracleOutcome] = []
    for name in selected:
        try:
            oracle = ORACLES[name]
        except KeyError:
            raise ValueError(
                f"unknown oracle {name!r}; known: {', '.join(sorted(ORACLES))}"
            ) from None
        if name == "unit-rescale":
            outcomes.append(oracle())
        elif name in ("serial-vs-parallel", "grid-permutation"):
            # Sweeps run several points; keep each one short.
            outcomes.append(oracle(duration_s=min(duration_s, 5.0), seed=seed))
        else:
            outcomes.append(oracle(duration_s=duration_s, seed=seed))
    return outcomes

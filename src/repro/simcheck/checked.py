"""A :class:`Simulator` subclass that verifies engine invariants as it runs.

The checked run loop mirrors :meth:`repro.simnet.engine.Simulator.run`
exactly — same watchdog placement, same ``until`` restore, same profile
and telemetry accounting — and adds three families of checks:

- **clock monotonicity**: every executed event fires at a time ``>=`` the
  current clock, and no callback rewinds the clock behind the engine's
  back;
- **heap integrity**: the calendar's heap property holds and the side
  entry table is consistent with it (every live entry has exactly one
  heap item), verified every ``heap_check_interval`` events and at the
  end of each ``run()``;
- **schedule sanity**: inherited from the base engine (NaN and
  past-scheduling already raise there).

Semantic equivalence with the unchecked engine is itself enforced by the
checked-vs-unchecked differential oracle in
:mod:`repro.simcheck.oracles`, which requires bit-identical results.
"""

from __future__ import annotations

import heapq
import time as _time
from collections import Counter as _Counter
from typing import Optional

from ..simnet.engine import SimulationError, Simulator
from ..telemetry import session as _telemetry_session
from .violations import InvariantViolation, ViolationReport, record_violation

#: Default events between full calendar-consistency scans.  The scan is
#: O(pending events); at the default cadence its cost is amortized far
#: below the per-event work of a realistic scenario.
DEFAULT_HEAP_CHECK_INTERVAL = 4096


class CheckedSimulator(Simulator):
    """Drop-in :class:`Simulator` with runtime invariant checking.

    Parameters
    ----------
    heap_check_interval:
        Events between full heap/entry-table consistency scans (the
        cheap per-event clock checks always run).
    report:
        Optional :class:`ViolationReport`; when given, violations are
        collected there instead of raised.
    """

    def __init__(
        self,
        heap_check_interval: int = DEFAULT_HEAP_CHECK_INTERVAL,
        report: Optional[ViolationReport] = None,
    ) -> None:
        if heap_check_interval < 1:
            raise ValueError(
                f"heap_check_interval must be >= 1: {heap_check_interval}"
            )
        super().__init__()
        self.heap_check_interval = heap_check_interval
        self.report = report
        self.checks_performed = 0

    # ------------------------------------------------------------------
    # Invariant checks
    # ------------------------------------------------------------------
    def verify_heap(self) -> None:
        """Verify the calendar: heap property + entry-table consistency."""
        heap = self._heap
        for index in range(1, len(heap)):
            parent = (index - 1) >> 1
            if heap[parent] > heap[index]:
                self._violation(
                    "engine.heap_order",
                    f"heap[{parent}]={heap[parent]} > heap[{index}]={heap[index]}",
                )
                return
        seq_counts = _Counter(seq for _, seq in heap)
        for seq, count in seq_counts.items():
            if count > 1:
                self._violation(
                    "engine.heap_duplicate",
                    f"event seq {seq} appears {count} times in the calendar",
                )
                return
        missing = [seq for seq in self._entries if seq not in seq_counts]
        if missing:
            self._violation(
                "engine.heap_entry_orphan",
                f"{len(missing)} live entries have no heap item "
                f"(first: seq {missing[0]})",
            )
            return
        for _, seq in heap:
            entry = self._entries.get(seq)
            if entry is not None and not callable(entry[0]):
                self._violation(
                    "engine.entry_not_callable",
                    f"entry for seq {seq} holds non-callable "
                    f"{type(entry[0]).__name__}",
                )
                return
        self.checks_performed += 1

    def _violation(self, invariant: str, message: str, **details: object) -> None:
        record_violation(
            InvariantViolation(
                invariant,
                "simulator",
                message,
                sim_time=self._now,
                details=dict(details) if details else None,
            ),
            self.report,
        )

    # ------------------------------------------------------------------
    # Checked run loop (mirror of Simulator.run + checks)
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        profile = self._profile
        started = _time.perf_counter() if profile is not None else 0.0
        events_before = self._events_processed
        heap = self._heap
        entries = self._entries
        pop = heapq.heappop
        executed = 0
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.arm()
        check_countdown = self.heap_check_interval
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                if watchdog is not None:
                    # Checked before the pop so a raised SimulationStalled
                    # never discards the event it interrupted.
                    watchdog.check(self)
                item = pop(heap)
                entry = entries.pop(item[1], None)
                if entry is None:
                    continue  # cancelled; discard lazily
                time = item[0]
                if until is not None and time > until:
                    # Not due yet: restore the event and stop.
                    entries[item[1]] = entry
                    heapq.heappush(heap, item)
                    break
                if time < self._now:
                    self._violation(
                        "engine.clock_monotonic",
                        f"event seq {item[1]} fires at {time} < now {self._now}",
                        event_time=time,
                    )
                self._now = time
                self._events_processed += 1
                executed += 1
                entry[0](*entry[1])
                self.checks_performed += 1
                if self._now != time:
                    self._violation(
                        "engine.clock_tampered",
                        f"callback moved the clock from {time} to {self._now}",
                        event_time=time,
                    )
                    self._now = time  # restore so later checks aren't cascaded noise
                check_countdown -= 1
                if check_countdown <= 0:
                    check_countdown = self.heap_check_interval
                    self.verify_heap()
            self.verify_heap()
        finally:
            self._running = False
            if profile is not None:
                profile.run_calls += 1
                profile.wall_seconds += _time.perf_counter() - started
                profile.events += self._events_processed - events_before
            tele = _telemetry_session()
            if tele.enabled:
                registry = tele.registry
                registry.counter("sim.events").inc(
                    self._events_processed - events_before
                )
                registry.counter("sim.run_calls").inc()
                registry.gauge("sim.pending_events").set(len(entries))
                registry.gauge("sim.clock_s").set(self._now)
        if until is not None and self._now < until:
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self._now = until

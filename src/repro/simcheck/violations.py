"""Structured invariant violations and the report that collects them.

Every check in :mod:`repro.simcheck` funnels through
:func:`record_violation`: the violation is counted in the PR-6 telemetry
registry (``simcheck.violations{invariant=...}``), then either raised
immediately (the default — a broken invariant means the simulation's
output cannot be trusted) or appended to a :class:`ViolationReport` when
the caller wants to sweep a whole run and report everything at once (the
``repro check`` CLI does this so one violation doesn't hide the rest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..telemetry import session as _telemetry_session


class InvariantViolation(AssertionError):
    """A machine-checked simulation invariant did not hold.

    Structured so supervisors and reports can aggregate by invariant
    name; derives from :class:`AssertionError` because a violation has
    the same meaning as a failed assert — the run's output is invalid.
    """

    def __init__(
        self,
        invariant: str,
        subject: str,
        message: str,
        sim_time: float = 0.0,
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(
            f"[{invariant}] {subject} at t={sim_time:.6f}s: {message}"
        )
        self.invariant = invariant
        self.subject = subject
        self.message = message
        self.sim_time = sim_time
        self.details: Dict[str, Any] = details or {}

    def __reduce__(self):
        # Violations can cross process boundaries (sweep workers -> the
        # supervisor), so pickling rebuilds through our constructor.
        return (
            type(self),
            (self.invariant, self.subject, self.message, self.sim_time, self.details),
        )

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON violation reports."""
        return {
            "invariant": self.invariant,
            "subject": self.subject,
            "message": self.message,
            "sim_time": self.sim_time,
            "details": dict(self.details),
        }


@dataclass
class ViolationReport:
    """Collects violations instead of raising on the first one.

    Passed into audit functions by the ``repro check`` CLI so a single
    sweep surfaces every broken invariant; tests and the default checked
    path leave it ``None`` and fail fast.
    """

    violations: List[InvariantViolation] = field(default_factory=list)
    checks_performed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, violation: InvariantViolation) -> None:
        self.violations.append(violation)

    def counted(self, n: int = 1) -> None:
        """Credit ``n`` executed checks (for report bookkeeping)."""
        self.checks_performed += n

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for the CLI's JSON artifact."""
        return {
            "ok": self.ok,
            "checks_performed": self.checks_performed,
            "violation_count": len(self.violations),
            "violations": [v.as_dict() for v in self.violations],
        }


def record_violation(
    violation: InvariantViolation,
    report: Optional[ViolationReport] = None,
) -> None:
    """Count ``violation`` in telemetry, then raise or collect it."""
    tele = _telemetry_session()
    if tele.enabled:
        tele.registry.counter(
            "simcheck.violations", invariant=violation.invariant
        ).inc()
        tele.tracer.event(
            "simcheck.violation",
            sim_time=violation.sim_time,
            invariant=violation.invariant,
            subject=violation.subject,
        )
    # Dump the flight-recorder window before the violation unwinds the
    # stack (no-op unless a recorder with an autodump path is active).
    tele.flightrec.maybe_autodump(
        f"invariant:{violation.invariant}", sim_time=violation.sim_time
    )
    if report is not None:
        report.add(violation)
        return
    raise violation

"""Privacy-preserving cross-provider aggregation (Section 3.1).

"The information to be shared between providers, to establish a common
barometer on the network weather, would be minimal (e.g. the level of
congestion in a particular part of the network).  Work on secure
multiparty computation and anonymous aggregation could be leveraged to
further shield such information sharing."

This module implements the classic additive-secret-sharing secure sum
(as in SEPIA / Roughan & Zhang): each provider splits its private value
into random shares, one per aggregator, so that no single aggregator —
and no coalition smaller than all of them — learns any provider's input,
yet the sum (and hence the mean congestion level) is recovered exactly.
Arithmetic is over a prime field with fixed-point encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

#: A Mersenne prime comfortably larger than any encoded measurement.
FIELD_PRIME = (1 << 61) - 1

#: Fixed-point scale: utilization fractions keep 6 decimal digits.
FIXED_POINT_SCALE = 1_000_000


def encode(value: float) -> int:
    """Fixed-point encode a non-negative measurement into the field."""
    if value < 0:
        raise ValueError(f"secure sum encodes non-negative values, got {value}")
    encoded = int(round(value * FIXED_POINT_SCALE))
    if encoded >= FIELD_PRIME // 2:
        raise ValueError(f"value too large to encode: {value}")
    return encoded


def decode(encoded: int) -> float:
    """Inverse of :func:`encode`."""
    return (encoded % FIELD_PRIME) / FIXED_POINT_SCALE


def make_shares(value: float, n_shares: int, rng: np.random.Generator) -> List[int]:
    """Split ``value`` into ``n_shares`` additive shares over the field.

    Any proper subset of the shares is uniformly random and carries no
    information about the value.
    """
    if n_shares < 2:
        raise ValueError(f"need at least 2 shares, got {n_shares}")
    encoded = encode(value)
    shares = [int(rng.integers(0, FIELD_PRIME)) for __ in range(n_shares - 1)]
    last = (encoded - sum(shares)) % FIELD_PRIME
    shares.append(last)
    return shares


@dataclass
class Aggregator:
    """One of the non-colluding aggregation servers."""

    name: str
    _accumulator: int = 0
    contributions: int = 0

    def receive_share(self, share: int) -> None:
        """Fold one provider's share in."""
        self._accumulator = (self._accumulator + share) % FIELD_PRIME
        self.contributions += 1

    @property
    def partial_sum(self) -> int:
        """This aggregator's share of the global sum."""
        return self._accumulator


class SecureCongestionAggregation:
    """Coordinates a round of secure congestion-level averaging.

    Providers submit their private congestion measurements (e.g. the
    utilization each observes toward a destination region); the protocol
    reveals only the mean.
    """

    def __init__(self, aggregator_names: Sequence[str], rng: np.random.Generator) -> None:
        if len(aggregator_names) < 2:
            raise ValueError("secure aggregation needs >= 2 aggregators")
        if len(set(aggregator_names)) != len(aggregator_names):
            raise ValueError(f"duplicate aggregator names: {aggregator_names}")
        self.aggregators = [Aggregator(name) for name in aggregator_names]
        self.rng = rng
        self.providers: List[str] = []

    def submit(self, provider: str, congestion_level: float) -> None:
        """A provider contributes its private measurement."""
        shares = make_shares(congestion_level, len(self.aggregators), self.rng)
        for aggregator, share in zip(self.aggregators, shares):
            aggregator.receive_share(share)
        self.providers.append(provider)

    def reveal_mean(self) -> float:
        """Combine the aggregators' partials into the mean measurement.

        Only this combined output is ever revealed; inputs stay secret.
        """
        if not self.providers:
            raise RuntimeError("no providers have submitted")
        total = sum(a.partial_sum for a in self.aggregators) % FIELD_PRIME
        return decode(total) / len(self.providers)

    @property
    def round_size(self) -> int:
        """Number of providers in the current round."""
        return len(self.providers)

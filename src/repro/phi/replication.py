"""A replicated Phi control plane: N context servers with anti-entropy.

The paper's context server is "a repository of shared state ... within a
domain"; PR 1 made the single server's *channel* fail realistically, and
this module makes the server itself a small distributed system.  A
:class:`ReplicatedContextService` runs ``n_replicas`` independent
:class:`~repro.phi.server.ContextServer` instances, each with its own
report window and lease table, and reconciles them with a periodic,
deterministic, sim-time-scheduled **anti-entropy merge**:

- the union of every replica's in-window connection reports is replayed
  (in a canonical order) into the replicas that missed them, via
  :meth:`ContextServer.absorb` — no lease side effects, window expiry
  preserved;
- lease tables are reconciled from per-replica issue/release logs: a
  lease is outstanding when *someone* issued it, *nobody* released it,
  and it has not TTL-expired; every replica's server is rewritten to the
  merged outstanding set.

Replica↔replica connectivity is an explicit mesh (:meth:`sever` /
:meth:`heal`, driven by :class:`repro.simnet.faults.Partition`); merges
happen independently inside each connected component, so a partitioned
minority diverges and then converges after heal — the convergence the
X7 oracle asserts.

Read policies (:class:`ReadPolicy`) decide when a replica may answer a
lookup:

- ``ANY``: always answer from local state (fastest, weakest);
- ``NEAREST``: like ANY — the *client* expresses nearness by ordering
  its replica preference (see :class:`repro.phi.failover.FailoverChannel`);
- ``QUORUM``: answer only when the serving replica can currently see a
  majority of the mesh *and* merged recently; otherwise the lookup
  raises :class:`QuorumUnavailable`, which the resilient client treats
  like any transport failure (STALE cache, then stock fallback).

Known approximation, by design: between merges two replicas can each
FIFO-release the *same* oldest lease for different reports, so ``n`` can
transiently overcount by the number of such collisions until the TTL
catches the orphan.  With sticky client failover (senders talk to one
replica at a time) collisions are rare, and ``n`` is an estimate anyway
— the divergence gauge and the oracle bound the effect.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..simnet.engine import Simulator
from ..telemetry import session as _telemetry_session
from ..transport.base import ConnectionStats
from .context import CongestionContext
from .server import ConnectionReport, ContextServer, RobustAggregationConfig


class ReadPolicy(Enum):
    """When a replica may answer a lookup from its local state."""

    ANY = "any"
    NEAREST = "nearest"
    QUORUM = "quorum"


class QuorumUnavailable(ConnectionError):
    """A QUORUM-policy lookup hit a replica that cannot see a majority
    (or whose merge state is too stale to answer for the majority).

    Subclasses :class:`ConnectionError` so the resilient client's
    ``TRANSPORT_ERRORS`` masking and the failover channel's per-replica
    error handling both treat it as "this replica cannot serve you now".
    """


@dataclass(frozen=True)
class ReplicationConfig:
    """Shape and cadence of the replicated control plane.

    Attributes
    ----------
    n_replicas:
        How many :class:`ContextServer` replicas to run.
    anti_entropy_period_s:
        Merge cadence.  Every period, each connected component of the
        replica mesh reconciles reports and leases.  With ``n_replicas
        == 1`` no merges are scheduled at all, keeping the event
        trajectory bit-identical to a single plain server (the
        replication oracle's claim).
    read_policy:
        See :class:`ReadPolicy`.
    quorum_staleness_s:
        Under ``QUORUM``, the longest a replica may go without a merge
        and still answer (it must be able to speak for a recent
        majority view, not just historically have been part of one).
    """

    n_replicas: int = 3
    anti_entropy_period_s: float = 1.0
    read_policy: ReadPolicy = ReadPolicy.ANY
    quorum_staleness_s: float = 5.0

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1: {self.n_replicas}")
        if self.anti_entropy_period_s <= 0:
            raise ValueError(
                f"anti_entropy_period_s must be positive: "
                f"{self.anti_entropy_period_s}"
            )
        if self.quorum_staleness_s <= 0:
            raise ValueError(
                f"quorum_staleness_s must be positive: {self.quorum_staleness_s}"
            )


#: A lease's globally unique identity: (issuing replica, local sequence).
LeaseId = Tuple[int, int]

#: Canonical replay order for anti-entropy: time first, then every field
#: so the order is total even for same-instant reports (EWMA folds are
#: order-sensitive; determinism requires a total order).
def _report_key(report: ConnectionReport) -> tuple:
    return (
        report.reported_at,
        report.flow_id,
        report.bytes_transferred,
        report.duration_s,
        report.mean_rtt_s,
        report.min_rtt_s,
        report.loss_indicator,
    )


class ReplicaHandle:
    """One replica's ``ContextSource`` surface plus its replication logs.

    Senders (through a per-replica
    :class:`~repro.phi.channel.ControlChannel`) talk to a handle exactly
    as they would to a plain server.  The handle shadows the server's
    lease lifecycle with globally identified leases — issue log and
    release log — so anti-entropy can reconcile lease *knowledge*, not
    just counts, and tracks which reports this replica has folded in.
    """

    def __init__(
        self, service: "ReplicatedContextService", index: int, server: ContextServer
    ) -> None:
        self.service = service
        self.index = index
        self.server = server
        self._lease_seq = itertools.count()
        #: Every lease this replica knows was issued (own and learned).
        self.lease_log: Dict[LeaseId, float] = {}
        #: Leases this replica knows were released by a report.
        self.released: Dict[LeaseId, float] = {}
        #: Reports folded into this replica's server (window-pruned).
        self.seen: Set[ConnectionReport] = set()
        self.last_merge_s = service.sim.now

    @property
    def sim(self) -> Simulator:
        return self.service.sim

    # ------------------------------------------------------------------
    # ContextSource protocol
    # ------------------------------------------------------------------
    def lookup(self) -> CongestionContext:
        """Serve a connection-start lookup from this replica's state."""
        self.service._check_read_policy(self.index)
        context = self.server.lookup()
        self._expire_lease_log()
        self.lease_log[(self.index, next(self._lease_seq))] = self.sim.now
        return context

    def report(self, report: ConnectionReport) -> None:
        """Accept a connection-end report into this replica's state."""
        rejected_before = self.server.reports_rejected
        self.server.report(report)
        if self.server.reports_rejected > rejected_before:
            # Dropped whole by robust validation: no lease was released
            # and nothing entered the window, so nothing to replicate.
            return
        self._expire_lease_log()
        outstanding = self.outstanding_leases()
        if outstanding:
            # Mirror the server's FIFO release: oldest outstanding lease,
            # with the lease id as a deterministic tie-break.
            oldest = min(outstanding, key=lambda lid: (outstanding[lid], lid))
            self.released[oldest] = outstanding[oldest]
        self.seen.add(report)

    def report_stats(self, stats: ConnectionStats) -> None:
        """Convenience parity with :class:`ContextServer`."""
        self.report(ConnectionReport.from_stats(stats, self.sim.now))

    def current_context(self) -> CongestionContext:
        """This replica's local (u, q, n) snapshot (no lease taken)."""
        return self.server.current_context()

    # ------------------------------------------------------------------
    # Lease bookkeeping
    # ------------------------------------------------------------------
    def outstanding_leases(self) -> Dict[LeaseId, float]:
        """Leases issued, not released, and not TTL-expired — this
        replica's view of ``n``'s composition."""
        return {
            lid: ts for lid, ts in self.lease_log.items()
            if lid not in self.released
        }

    def _expire_lease_log(self) -> None:
        """Drop TTL-expired entries, mirroring the server's expiry."""
        ttl = self.server.lease_ttl_s
        if ttl is None:
            return
        horizon = self.sim.now - ttl
        expired = [lid for lid, ts in self.lease_log.items() if ts <= horizon]
        for lid in expired:
            del self.lease_log[lid]
            self.released.pop(lid, None)


class ReplicatedContextService:
    """N context-server replicas plus the anti-entropy that binds them.

    Construction mirrors :class:`ContextServer` (same estimator knobs,
    applied to every replica) with a :class:`ReplicationConfig` for the
    distributed-systems shape.  Senders should each be wired to one
    replica's :meth:`handle` through a
    :class:`~repro.phi.channel.ControlChannel`, with a
    :class:`~repro.phi.failover.FailoverChannel` on top for failover.
    """

    def __init__(
        self,
        sim: Simulator,
        bottleneck_capacity_bps: float,
        *,
        config: Optional[ReplicationConfig] = None,
        window_s: float = 10.0,
        ewma_alpha: float = 0.3,
        lease_ttl_s: Optional[float] = 300.0,
        robust: Optional[RobustAggregationConfig] = None,
    ) -> None:
        self.sim = sim
        self.config = config or ReplicationConfig()
        self.servers: List[ContextServer] = [
            ContextServer(
                sim,
                bottleneck_capacity_bps,
                window_s=window_s,
                ewma_alpha=ewma_alpha,
                lease_ttl_s=lease_ttl_s,
                robust=robust,
            )
            for _ in range(self.config.n_replicas)
        ]
        self.handles: List[ReplicaHandle] = [
            ReplicaHandle(self, index, server)
            for index, server in enumerate(self.servers)
        ]
        self._severed: Set[frozenset] = set()
        self.anti_entropy_merges = 0
        self.reports_replicated = 0
        self.quorum_rejections = 0
        #: (sim time, divergence) sampled at every anti-entropy tick —
        #: the convergence oracle's evidence trail.
        self.divergence_history: List[Tuple[float, float]] = []
        # A single replica has no peer to reconcile with: scheduling no
        # ticks keeps the N=1 event trajectory bit-identical to a plain
        # single-server deployment (asserted by the replication oracle).
        if self.n_replicas > 1:
            sim.schedule(self.config.anti_entropy_period_s, self._tick)

    @property
    def n_replicas(self) -> int:
        return len(self.servers)

    def handle(self, index: int) -> ReplicaHandle:
        """The ``ContextSource``-compatible surface of replica ``index``."""
        return self.handles[index]

    # ------------------------------------------------------------------
    # Mesh connectivity (driven by Partition faults)
    # ------------------------------------------------------------------
    def _check_edge(self, i: int, j: int) -> None:
        n = self.n_replicas
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"replica index out of range: ({i}, {j}) of {n}")
        if i == j:
            raise ValueError(f"a replica cannot be severed from itself: {i}")

    def sever(self, i: int, j: int) -> None:
        """Cut the anti-entropy path between replicas ``i`` and ``j``."""
        self._check_edge(i, j)
        self._severed.add(frozenset((i, j)))

    def heal(self, i: int, j: int) -> None:
        """Restore the anti-entropy path between ``i`` and ``j``."""
        self._check_edge(i, j)
        self._severed.discard(frozenset((i, j)))

    def reachable(self, i: int, j: int) -> bool:
        """Whether ``i`` and ``j`` can gossip directly right now."""
        return i == j or frozenset((i, j)) not in self._severed

    def components(self) -> List[List[int]]:
        """Connected components of the replica mesh, each sorted."""
        unvisited = set(range(self.n_replicas))
        components: List[List[int]] = []
        while unvisited:
            root = min(unvisited)
            component = {root}
            frontier = [root]
            unvisited.discard(root)
            while frontier:
                node = frontier.pop()
                for peer in list(unvisited):
                    if self.reachable(node, peer):
                        component.add(peer)
                        unvisited.discard(peer)
                        frontier.append(peer)
            components.append(sorted(component))
        return components

    def component_of(self, index: int) -> List[int]:
        """The connected component containing replica ``index``."""
        for component in self.components():
            if index in component:
                return component
        raise ValueError(f"replica index out of range: {index}")

    # ------------------------------------------------------------------
    # Read policy
    # ------------------------------------------------------------------
    def _check_read_policy(self, index: int) -> None:
        if (
            self.config.read_policy is not ReadPolicy.QUORUM
            or self.n_replicas == 1
        ):
            return
        component = self.component_of(index)
        if 2 * len(component) <= self.n_replicas:
            self.quorum_rejections += 1
            raise QuorumUnavailable(
                f"replica {index} sees {len(component)}/{self.n_replicas} "
                f"replicas; no quorum"
            )
        staleness = self.sim.now - self.handles[index].last_merge_s
        limit = max(
            self.config.quorum_staleness_s, self.config.anti_entropy_period_s
        )
        if staleness > limit:
            self.quorum_rejections += 1
            raise QuorumUnavailable(
                f"replica {index} last merged {staleness:.3f}s ago "
                f"(limit {limit:.3f}s)"
            )

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        for component in self.components():
            if len(component) > 1:
                self._merge(component)
        divergence = self.replica_divergence()
        self.divergence_history.append((self.sim.now, divergence))
        tele = _telemetry_session()
        if tele.enabled:
            tele.registry.gauge("phi.replica_divergence").set(divergence)
        self.sim.schedule(self.config.anti_entropy_period_s, self._tick)

    def _merge(self, component: Sequence[int]) -> None:
        """Reconcile reports and leases across one connected component."""
        now = self.sim.now
        handles = [self.handles[i] for i in component]

        # Reports: union of every member's in-window set, replayed into
        # the members that missed them in one canonical order.
        union: Set[ConnectionReport] = set()
        for handle in handles:
            horizon = now - handle.server.window_s
            handle.seen = {
                r for r in handle.seen if r.reported_at >= horizon
            }
            union |= handle.seen
        for handle in handles:
            missing = sorted(union - handle.seen, key=_report_key)
            for report in missing:
                handle.server.absorb(report)
                self.reports_replicated += 1
            handle.seen = set(union)

        # Leases: outstanding = union(issued) − union(released) − expired.
        for handle in handles:
            handle._expire_lease_log()
        union_log: Dict[LeaseId, float] = {}
        union_released: Dict[LeaseId, float] = {}
        for handle in handles:
            union_log.update(handle.lease_log)
            union_released.update(handle.released)
        outstanding = sorted(
            ts for lid, ts in union_log.items() if lid not in union_released
        )
        for handle in handles:
            handle.lease_log = dict(union_log)
            handle.released = dict(union_released)
            handle.server.reset_leases(outstanding)
            handle.last_merge_s = now

        self.anti_entropy_merges += 1
        tele = _telemetry_session()
        if tele.enabled:
            tele.registry.counter("phi.anti_entropy_merges").inc()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def replica_divergence(self) -> float:
        """Max cross-replica gap in the utilization estimate.

        Utilization is the estimate partitions skew hardest (a cut-off
        replica misses every report landing on the other side), and it is
        a pure function of the report window — so after a full merge the
        gap collapses to zero, which is what the convergence oracle pins.
        """
        if self.n_replicas < 2:
            return 0.0
        estimates = [server.estimated_utilization() for server in self.servers]
        return max(estimates) - min(estimates)

    def total_reports_received(self) -> int:
        """Reports received first-hand across all replicas (absorbed
        copies excluded)."""
        return sum(server.reports_received for server in self.servers)

"""Semantic fault injection: a control plane that lies.

PR 1/2 made the control plane *unreachable* (loss, outages, partitions);
this module makes it *wrong*.  The distinction matters because the two
fail differently: an absent context degrades a sender to defaults, while
a corrupted context actively mistunes it — TCPTuner-style evidence says
acting on garbage parameters is worse than never coordinating at all.
Every corruptor here produces the kind of wrongness a real deployment
can see:

- :class:`BitFlipCorruptor` — a flipped bit in the encoded payload
  (memory/wire corruption): wild values, NaN, infinities, negatives.
- :class:`ScaleCorruptor` — unit/encoding mistakes (milliseconds read
  as seconds, bytes as kilobytes): plausible shapes, wrong magnitudes.
- :class:`FrozenContextCorruptor` — a stuck server: the first snapshot
  forever, re-stamped so staleness checks never fire.
- :class:`ReplayCorruptor` — plausible-but-stale history replayed with
  fresh timestamps (a lagging replica serving old state as current).
- :class:`AdversarialCorruptor` — a deliberate, internally-consistent
  lie that deflates (or inflates) the congestion picture; deflation is
  the dangerous direction, turning every sender aggressive under load.
- :class:`GarbageCorruptor` — unambiguously invalid payloads (NaN /
  infinite / negative fields), the easy case every guard must catch.
- :class:`ByzantineReporter` — a fraction of senders lie in their
  end-of-connection reports, poisoning the server's aggregates.

Corrupted snapshots are built with :func:`raw_context`, which bypasses
``CongestionContext.__post_init__`` exactly like a decoded wire payload
would — consumers must not rely on constructor validation, which is why
:class:`~repro.phi.guard.ContextGuard` exists.

All randomness comes from an injected ``numpy`` generator, so a sweep
point's corruption trace is a pure function of its seed (serial and
parallel sweeps stay bit-identical).
"""

from __future__ import annotations

import math
import struct
from collections import deque
from dataclasses import replace
from typing import Deque, Iterable, Optional, Sequence, Tuple

from .context import CongestionContext
from .server import ConnectionReport

#: Context fields a corruptor may target (timestamp is handled apart:
#: corruptors re-stamp rather than scramble it, because a wrong clock is
#: what the staleness machinery already covers).
CONTEXT_VALUE_FIELDS = (
    "utilization",
    "queue_delay_s",
    "competing_senders",
    "fair_share_mbps",
)


def raw_context(
    utilization: float,
    queue_delay_s: float,
    competing_senders: float,
    timestamp: float = 0.0,
    fair_share_mbps: Optional[float] = None,
) -> CongestionContext:
    """A :class:`CongestionContext` built *without* constructor validation.

    Models a snapshot decoded straight off the wire: deserialization does
    not re-run ``__post_init__``, so a corrupted payload can carry NaN,
    infinities, negatives, or out-of-range values into the client.
    """
    context = object.__new__(CongestionContext)
    object.__setattr__(context, "utilization", float(utilization))
    object.__setattr__(context, "queue_delay_s", float(queue_delay_s))
    object.__setattr__(context, "competing_senders", float(competing_senders))
    object.__setattr__(context, "timestamp", float(timestamp))
    object.__setattr__(
        context,
        "fair_share_mbps",
        None if fair_share_mbps is None else float(fair_share_mbps),
    )
    return context


def _context_fields(context: CongestionContext) -> dict:
    return {
        "utilization": context.utilization,
        "queue_delay_s": context.queue_delay_s,
        "competing_senders": context.competing_senders,
        "timestamp": context.timestamp,
        "fair_share_mbps": context.fair_share_mbps,
    }


def flip_float_bit(value: float, bit: int) -> float:
    """Flip one bit of the IEEE-754 double encoding of ``value``."""
    if not 0 <= bit < 64:
        raise ValueError(f"bit must be in [0, 64): {bit}")
    (encoded,) = struct.unpack("<Q", struct.pack("<d", float(value)))
    (flipped,) = struct.unpack("<d", struct.pack("<Q", encoded ^ (1 << bit)))
    return flipped


class ContextCorruptor:
    """Base class: corrupts each lookup with probability ``severity``.

    ``severity`` in [0, 1] is the single knob the poisoned sweep turns:
    0 never corrupts, 1 corrupts every lookup.  Subclasses implement
    :meth:`_mutate` and may additionally scale their *magnitude* with
    severity where that is meaningful.
    """

    name = "corruptor"

    def __init__(self, rng, severity: float) -> None:
        if not 0.0 <= severity <= 1.0:
            raise ValueError(f"severity must be in [0, 1]: {severity}")
        self.rng = rng
        self.severity = severity
        self.corrupted = 0
        self.passed = 0

    def corrupt(self, context: CongestionContext) -> CongestionContext:
        """Return the context the client actually receives."""
        if self.severity <= 0.0 or float(self.rng.random()) >= self.severity:
            self.passed += 1
            return self._observe(context)
        self.corrupted += 1
        return self._mutate(context)

    def _observe(self, context: CongestionContext) -> CongestionContext:
        """Hook for corruptors that track history even when passing through."""
        return context

    def _mutate(self, context: CongestionContext) -> CongestionContext:
        raise NotImplementedError

    def _pick_field(self, context: CongestionContext) -> str:
        candidates = [
            name
            for name in CONTEXT_VALUE_FIELDS
            if getattr(context, name) is not None
        ]
        return candidates[int(self.rng.integers(0, len(candidates)))]


class BitFlipCorruptor(ContextCorruptor):
    """One flipped bit in one field's float64 encoding."""

    name = "bitflip"

    def _mutate(self, context: CongestionContext) -> CongestionContext:
        fields = _context_fields(context)
        target = self._pick_field(context)
        bit = int(self.rng.integers(0, 64))
        fields[target] = flip_float_bit(fields[target], bit)
        return raw_context(**fields)


class ScaleCorruptor(ContextCorruptor):
    """A power-of-ten unit error on one field (ms read as s, and so on)."""

    name = "scale"

    def __init__(self, rng, severity: float, *, max_decades: int = 3) -> None:
        super().__init__(rng, severity)
        if max_decades < 1:
            raise ValueError(f"max_decades must be >= 1: {max_decades}")
        self.max_decades = max_decades

    def _mutate(self, context: CongestionContext) -> CongestionContext:
        fields = _context_fields(context)
        target = self._pick_field(context)
        decades = int(self.rng.integers(1, self.max_decades + 1))
        if bool(self.rng.random() < 0.5):
            decades = -decades
        fields[target] = fields[target] * (10.0 ** decades)
        return raw_context(**fields)


class FrozenContextCorruptor(ContextCorruptor):
    """A stuck server: the first snapshot forever, re-stamped as fresh.

    Re-stamping is the point — a frozen-but-honestly-timestamped snapshot
    would age out through the staleness TTL, so the dangerous failure is
    the one that keeps *claiming* freshness.
    """

    name = "frozen"

    def __init__(self, rng, severity: float) -> None:
        super().__init__(rng, severity)
        self._stuck: Optional[CongestionContext] = None

    def _observe(self, context: CongestionContext) -> CongestionContext:
        if self._stuck is None:
            self._stuck = context
        return context

    def _mutate(self, context: CongestionContext) -> CongestionContext:
        if self._stuck is None:
            self._stuck = context
        fields = _context_fields(self._stuck)
        fields["timestamp"] = context.timestamp
        return raw_context(**fields)


class ReplayCorruptor(ContextCorruptor):
    """Plausible-but-stale history replayed with a fresh timestamp."""

    name = "replay"

    def __init__(self, rng, severity: float, *, depth: int = 16) -> None:
        super().__init__(rng, severity)
        if depth < 1:
            raise ValueError(f"depth must be >= 1: {depth}")
        self._history: Deque[CongestionContext] = deque(maxlen=depth)

    def _observe(self, context: CongestionContext) -> CongestionContext:
        self._history.append(context)
        return context

    def _mutate(self, context: CongestionContext) -> CongestionContext:
        self._history.append(context)
        stale = self._history[0]
        fields = _context_fields(stale)
        fields["timestamp"] = context.timestamp
        return raw_context(**fields)


class AdversarialCorruptor(ContextCorruptor):
    """A deliberate, internally-consistent lie about the weather.

    ``deflate`` (the dangerous direction) blends the context toward "the
    network is idle": utilization and queueing toward zero, one competing
    sender, fair share scaled up to match — every sender then picks the
    most aggressive policy entry while the link is actually loaded.
    ``inflate`` is the opposite lie (everything severe), which wastes
    capacity rather than causing losses.  The blend factor is the
    severity, so the lie hardens as the sweep's knob turns.

    The lie keeps ``fair_share ~= capacity / n`` self-consistent, so a
    cross-field guardrail cannot refute it; only outcome-driven trust
    (:mod:`repro.phi.trust`) catches this corruptor.
    """

    name = "deflate"

    def __init__(self, rng, severity: float, *, inflate: bool = False) -> None:
        super().__init__(rng, severity)
        self.inflate = inflate
        if inflate:
            self.name = "inflate"

    def _mutate(self, context: CongestionContext) -> CongestionContext:
        blend = self.severity
        fields = _context_fields(context)
        if self.inflate:
            target_util = 1.0
            target_queue = 0.5
            target_n = max(fields["competing_senders"], 1.0) * 16.0
        else:
            target_util = 0.0
            target_queue = 0.0
            target_n = 1.0

        def toward(value: float, target: float) -> float:
            return value + (target - value) * blend

        n_before = max(1.0, fields["competing_senders"])
        fields["utilization"] = toward(fields["utilization"], target_util)
        fields["queue_delay_s"] = toward(fields["queue_delay_s"], target_queue)
        fields["competing_senders"] = toward(fields["competing_senders"], target_n)
        if fields["fair_share_mbps"] is not None:
            # Keep the lie self-consistent: fair share scales inversely
            # with the claimed sender count.
            capacity_proxy = fields["fair_share_mbps"] * n_before
            fields["fair_share_mbps"] = capacity_proxy / max(
                1.0, fields["competing_senders"]
            )
        return raw_context(**fields)


class GarbageCorruptor(ContextCorruptor):
    """Unambiguously invalid payloads: NaN, infinities, negatives.

    The easy case — anything a :class:`~repro.phi.guard.ContextGuard`
    must reject on sight.  With this corruptor at severity 1 a guarded
    client never acts on context at all, which makes the run
    bit-identical to the uncoordinated baseline (the safety floor).
    """

    name = "garbage"

    _POISONS = (math.nan, math.inf, -math.inf, -1.0, -1e12)

    def _mutate(self, context: CongestionContext) -> CongestionContext:
        fields = _context_fields(context)
        target = self._pick_field(context)
        fields[target] = self._POISONS[int(self.rng.integers(0, len(self._POISONS)))]
        return raw_context(**fields)


class CompositeCorruptor(ContextCorruptor):
    """Pick one member corruptor per lookup (a mixed failure population).

    The composite owns the per-lookup corruption draw and invokes the
    chosen member's mutation directly; a member's own severity only
    matters where it scales *magnitude* (the adversarial blend), so
    members are built at the sweep's severity.
    """

    name = "composite"

    def __init__(
        self, rng, severity: float, members: Sequence[ContextCorruptor]
    ) -> None:
        super().__init__(rng, severity)
        if not members:
            raise ValueError("composite needs at least one member corruptor")
        self.members = list(members)

    def _observe(self, context: CongestionContext) -> CongestionContext:
        for member in self.members:
            member._observe(context)
        return context

    def _mutate(self, context: CongestionContext) -> CongestionContext:
        member = self.members[int(self.rng.integers(0, len(self.members)))]
        member.corrupted += 1
        return member._mutate(context)


#: Corruption modes accepted by :func:`make_context_corruptor`.
CONTEXT_CORRUPTION_MODES = (
    "bitflip",
    "scale",
    "frozen",
    "replay",
    "deflate",
    "inflate",
    "garbage",
)

DEFAULT_MODES: Tuple[str, ...] = ("bitflip", "scale", "frozen", "replay", "deflate")


def make_context_corruptor(
    modes: Iterable[str], rng, severity: float
) -> ContextCorruptor:
    """Build the corruptor for a mode list (composite when several)."""
    mode_list = list(modes)
    if not mode_list:
        raise ValueError("need at least one corruption mode")
    builders = {
        "bitflip": BitFlipCorruptor,
        "scale": ScaleCorruptor,
        "frozen": FrozenContextCorruptor,
        "replay": ReplayCorruptor,
        "deflate": lambda r, s: AdversarialCorruptor(r, s, inflate=False),
        "inflate": lambda r, s: AdversarialCorruptor(r, s, inflate=True),
        "garbage": GarbageCorruptor,
    }
    unknown = [mode for mode in mode_list if mode not in builders]
    if unknown:
        raise ValueError(
            f"unknown corruption mode(s) {unknown}; "
            f"known: {', '.join(CONTEXT_CORRUPTION_MODES)}"
        )
    if len(mode_list) == 1:
        return builders[mode_list[0]](rng, severity)
    # The composite owns the per-lookup corruption draw; member severity
    # only matters where it scales magnitude (the adversarial blend).
    members = [builders[mode](rng, severity) for mode in mode_list]
    return CompositeCorruptor(rng, severity, members)


class ByzantineReporter:
    """Poison a fraction of :class:`ConnectionReport`s (lying senders).

    Models a Byzantine sub-population: each report is poisoned with
    probability ``fraction``, independent of the context-corruption
    severity (the two axes of the X6 sweep).  Poisoned reports come in
    three flavours, chosen per report:

    - **inflate**: claim a huge transfer with no loss and no queueing,
      dragging the server's utilization estimate up and its congestion
      estimates down;
    - **understate**: claim almost nothing happened, starving the
      estimates;
    - **garbage**: structurally invalid numbers (NaN / negative fields)
      that unsanitized aggregation would swallow whole.
    """

    name = "byzantine"

    def __init__(self, rng, fraction: float, *, magnitude: float = 1.0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        if magnitude <= 0:
            raise ValueError(f"magnitude must be positive: {magnitude}")
        self.rng = rng
        self.fraction = fraction
        self.magnitude = magnitude
        self.poisoned = 0
        self.passed = 0

    def corrupt(self, report: ConnectionReport) -> ConnectionReport:
        if self.fraction <= 0.0 or float(self.rng.random()) >= self.fraction:
            self.passed += 1
            return report
        self.poisoned += 1
        flavour = int(self.rng.integers(0, 3))
        if flavour == 0:  # inflate: huge clean transfer
            return replace(
                report,
                bytes_transferred=int(
                    report.bytes_transferred * (1.0 + 999.0 * self.magnitude) + 1
                ),
                mean_rtt_s=report.min_rtt_s,
                loss_indicator=0.0,
            )
        if flavour == 1:  # understate: almost nothing happened
            return replace(
                report,
                bytes_transferred=0,
                duration_s=min(report.duration_s, 1e-3),
                mean_rtt_s=report.min_rtt_s,
                loss_indicator=0.0,
            )
        # garbage: structurally invalid numbers
        return replace(
            report,
            bytes_transferred=-1,
            duration_s=-report.duration_s,
            mean_rtt_s=math.nan,
            loss_indicator=2.0,
        )


class CorruptionLayer:
    """The pluggable bundle a :class:`~repro.phi.channel.ControlChannel` hosts.

    Sits on the RPC payloads — lookup responses on the way in, reports on
    the way out — alongside the channel's existing loss/outage faults.
    Either side may be ``None`` (no corruption on that path).
    """

    def __init__(
        self,
        *,
        context_corruptor: Optional[ContextCorruptor] = None,
        report_corruptor: Optional[ByzantineReporter] = None,
    ) -> None:
        self.context_corruptor = context_corruptor
        self.report_corruptor = report_corruptor

    def corrupt_context(self, context: CongestionContext) -> CongestionContext:
        if self.context_corruptor is None:
            return context
        return self.context_corruptor.corrupt(context)

    def corrupt_report(self, report: ConnectionReport) -> ConnectionReport:
        if self.report_corruptor is None:
            return report
        return self.report_corruptor.corrupt(report)

    @property
    def contexts_corrupted(self) -> int:
        corruptor = self.context_corruptor
        return 0 if corruptor is None else corruptor.corrupted

    @property
    def reports_poisoned(self) -> int:
        reporter = self.report_corruptor
        return 0 if reporter is None else reporter.poisoned


class CorruptingSource:
    """Wrap a bare ``ContextSource`` so its protocol surface lies.

    For setups that talk to a :class:`~repro.phi.server.ContextServer`
    directly (no :class:`~repro.phi.channel.ControlChannel` in between):
    lookups come back corrupted, reports arrive poisoned.
    """

    def __init__(self, backend, layer: CorruptionLayer) -> None:
        self.backend = backend
        self.layer = layer

    def lookup(self) -> CongestionContext:
        return self.layer.corrupt_context(self.backend.lookup())

    def report(self, report: ConnectionReport) -> None:
        self.backend.report(self.layer.corrupt_report(report))

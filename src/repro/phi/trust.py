"""Outcome-driven trust in the context server.

Guardrails (:mod:`repro.phi.guard`) catch contexts that are *implausible*
— but a competent liar serves plausible ones.  A frozen replica, a
replayed snapshot, or an adversarial deflation all pass every static
check; the only evidence against them is that connections keep turning
out worse (or differently) than the context predicted.  This module
closes that loop: every finished connection compares the congestion
level the context *predicted* against the level the connection actually
*observed* (its own loss rate and RTT inflation), and an EWMA of that
agreement is the client's trust score.

When trust collapses, the
:class:`~repro.phi.fallback.ResilientContextClient` enters the
``DISTRUSTED`` decision mode: lookups still succeed, but senders run
stock defaults — the same bounded-loss discipline on-line congestion
control theory demands under adversarial inputs (never do worse than
the uncoordinated baseline by more than a constant).  Recovery is
hysteresis-gated: while distrusted the client keeps *shadow-scoring*
predictions without acting on them, and only a sustained run of accurate
predictions restores trust, so a flapping server cannot oscillate the
population between tuned and default behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..telemetry import session as _telemetry_session
from ..transport.base import ConnectionStats
from .context import QUEUE_DELAY_THRESHOLDS, CongestionLevel, _bucket

#: Loss-rate thresholds between LOW/MODERATE/HIGH/SEVERE observed
#: congestion.  Loss is the ground truth a sender cannot be lied to
#: about: it paid for every retransmit itself.
LOSS_RATE_THRESHOLDS = (0.005, 0.02, 0.08)


def observed_level(queue_delay_s: float, loss_rate: float) -> CongestionLevel:
    """The congestion level a connection actually experienced.

    Worst-of per-signal buckets, mirroring
    :meth:`~repro.phi.context.CongestionContext.level`: RTT inflation
    reuses the context's queue-delay thresholds, loss gets its own.
    """
    by_queue = _bucket(max(0.0, queue_delay_s), QUEUE_DELAY_THRESHOLDS)
    by_loss = _bucket(max(0.0, loss_rate), LOSS_RATE_THRESHOLDS)
    return max(by_queue, by_loss, key=lambda lvl: lvl.rank)


def observed_level_from_stats(stats: ConnectionStats) -> CongestionLevel:
    """Observed level straight from a connection's final statistics."""
    return observed_level(stats.mean_queueing_delay, stats.loss_indicator)


@dataclass(frozen=True)
class TrustConfig:
    """Scoring and hysteresis knobs.

    Attributes
    ----------
    ewma_alpha:
        Weight of the newest prediction-vs-outcome comparison.
    exact_credit / adjacent_credit:
        Score contribution of an exact level match and an off-by-one
        match.  Off-by-one is cheap to forgive: the practical server's
        estimates are noisy even when honest.  Two or more levels of
        error contribute zero.
    distrust_below:
        Entering threshold: trust at or below this (after warm-up)
        flips the tracker to distrusted.
    restore_above:
        Leaving threshold: trust must climb back above this to restore.
        The gap between the two thresholds is the hysteresis band.
    min_samples:
        Warm-up: no distrust verdict before this many outcomes, so a
        single unlucky connection cannot de-coordinate the population.
    """

    ewma_alpha: float = 0.15
    exact_credit: float = 1.0
    adjacent_credit: float = 0.6
    distrust_below: float = 0.4
    restore_above: float = 0.7
    min_samples: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1]: {self.ewma_alpha}")
        if not 0.0 <= self.adjacent_credit <= self.exact_credit <= 1.0:
            raise ValueError(
                "credits must satisfy 0 <= adjacent <= exact <= 1: "
                f"{self.adjacent_credit}, {self.exact_credit}"
            )
        if not 0.0 <= self.distrust_below < self.restore_above <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 <= distrust_below < restore_above <= 1: "
                f"{self.distrust_below}, {self.restore_above}"
            )
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1: {self.min_samples}")


class TrustTracker:
    """EWMA agreement score with hysteresis-gated distrust.

    Starts fully trusting (score 1.0): coordination is presumed useful
    until outcomes say otherwise.  :meth:`record` folds one finished
    connection in; :attr:`distrusted` is the gate the resilient client
    consults before acting on a context.
    """

    def __init__(self, config: Optional[TrustConfig] = None) -> None:
        self.config = config or TrustConfig()
        self.score = 1.0
        self.samples = 0
        self.mispredictions = 0
        self.distrust_entries = 0
        self.restorations = 0
        self._distrusted = False

    @property
    def distrusted(self) -> bool:
        """Whether the client should refuse to act on contexts."""
        return self._distrusted

    def record(
        self, predicted: CongestionLevel, observed: CongestionLevel
    ) -> float:
        """Fold one prediction-vs-outcome comparison in; returns the score."""
        cfg = self.config
        error = abs(predicted.rank - observed.rank)
        if error == 0:
            credit = cfg.exact_credit
        elif error == 1:
            credit = cfg.adjacent_credit
        else:
            credit = 0.0
            self.mispredictions += 1
        self.score = (1.0 - cfg.ewma_alpha) * self.score + cfg.ewma_alpha * credit
        self.samples += 1

        if self._distrusted:
            if self.score > cfg.restore_above:
                self._distrusted = False
                self.restorations += 1
                self._transition("trusted")
        elif self.samples >= cfg.min_samples and self.score <= cfg.distrust_below:
            self._distrusted = True
            self.distrust_entries += 1
            self._transition("distrusted")

        tele = _telemetry_session()
        if tele.enabled:
            tele.registry.gauge("phi.trust_score").set(self.score)
        return self.score

    def record_outcome(
        self, predicted: CongestionLevel, stats: ConnectionStats
    ) -> float:
        """Convenience: score a prediction against final connection stats."""
        return self.record(predicted, observed_level_from_stats(stats))

    def _transition(self, to_state: str) -> None:
        tele = _telemetry_session()
        if tele.enabled:
            tele.registry.counter("phi.trust_transitions", to_state=to_state).inc()

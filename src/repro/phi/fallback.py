"""Graceful degradation for Phi clients when the control plane fails.

TCPTuner-style evidence says acting on garbage tuning parameters is
worse than the defaults, so a sender that cannot reach (or cannot
trust) the context server must fail *safe*: fall back to exactly the
uncoordinated behaviour the status quo ships.  The
:class:`ResilientContextClient` wraps any ``ContextSource`` — in
practice a :class:`~repro.phi.channel.ControlChannel` — and implements
that discipline:

- **FRESH**: the lookup succeeded; use the live context.
- **STALE**: the lookup failed but a cached context is younger than the
  staleness TTL; use the cache (still coordinated, slightly old).
- **FALLBACK**: no usable context; the caller must behave exactly like
  an unmodified sender (default Cubic parameters).
- **DISTRUSTED**: lookups *succeed* but the outcome-driven
  :class:`~repro.phi.trust.TrustTracker` says the answers have been
  wrong; act like FALLBACK (stock defaults) while shadow-scoring the
  answers so sustained accuracy can restore trust.

A :class:`~repro.phi.guard.ContextGuard`, when attached, vets every
successful lookup before it is cached or acted on; a rejected snapshot
takes the same degradation path a failed RPC would.

Every decision is tagged and counted so experiments can attribute
outcomes to context quality.  End-of-connection reports that fail are
queued (bounded) and flushed opportunistically once the channel works
again, so the server's shared state heals after a partition instead of
losing the partition's history.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Deque, Dict, Optional

from ..simnet.engine import Simulator
from ..simnet.node import Host
from ..simnet.packet import FlowSpec
from ..telemetry import session as _telemetry_session
from ..transport.base import ConnectionStats, TcpSender
from ..transport.cubic import CubicParams, CubicSender
from .channel import RpcError
from .context import CongestionContext
from .guard import ContextGuard
from .policy import PolicyTable
from .server import ConnectionReport
from .trust import TrustTracker

#: Exception types that mean "the control plane is unreachable" — the
#: only failures the resilient client is licensed to mask.  Anything
#: else (a TypeError in a policy callback, a KeyError in a backend) is a
#: programming bug and must propagate, not be silently converted into a
#: fallback decision.  :class:`RpcError` subclasses RuntimeError, so it
#: is listed explicitly rather than catching RuntimeError wholesale.
TRANSPORT_ERRORS = (RpcError, ConnectionError, TimeoutError, OSError)


class ContextDecision(Enum):
    """How a connection's starting context was obtained."""

    FRESH = "fresh"            # live lookup succeeded
    STALE = "stale"            # lookup failed; cache within TTL used
    FALLBACK = "fallback"      # no usable context; uncoordinated defaults
    DISTRUSTED = "distrusted"  # lookup succeeded but trust has collapsed


@dataclass(frozen=True)
class ResolvedContext:
    """One lookup outcome: the context (if any) and its provenance.

    ``shadow`` carries the guard-accepted context of a DISTRUSTED lookup:
    the caller must not act on it, but the client still scores it against
    the connection's outcome so accuracy can earn trust back.
    """

    decision: ContextDecision
    context: Optional[CongestionContext]
    age_s: float = 0.0
    shadow: Optional[CongestionContext] = None

    @property
    def coordinated(self) -> bool:
        """Whether the caller may act on shared state at all."""
        return self.decision not in (
            ContextDecision.FALLBACK,
            ContextDecision.DISTRUSTED,
        )


class ResilientContextClient:
    """Failure-masking wrapper around any ``ContextSource``.

    Parameters
    ----------
    source:
        The (possibly failing) context source.  Lookup/report failures
        must surface as exceptions — e.g.
        :class:`~repro.phi.channel.RpcError` from a ControlChannel.  A
        plain :class:`~repro.phi.server.ContextServer` also works; it
        simply never fails.
    now:
        Clock callable (simulation time).
    staleness_ttl_s:
        Maximum age of a cached context before it stops being usable as
        a STALE answer and the client falls back to defaults.
    max_pending_reports:
        Bound on the recovery queue of unsent end-of-connection reports;
        beyond it the oldest queued report is dropped (and counted).
    guard:
        Optional :class:`~repro.phi.guard.ContextGuard`.  Every
        successful lookup is validated before being cached or served; a
        rejected snapshot degrades exactly like a failed RPC (STALE
        cache if young enough, else FALLBACK).
    trust:
        Optional :class:`~repro.phi.trust.TrustTracker`.  While it is
        distrusted, guard-accepted lookups resolve as DISTRUSTED — the
        context rides along as ``shadow`` for scoring, but the caller
        runs stock defaults.
    """

    def __init__(
        self,
        source,
        *,
        now: Callable[[], float],
        staleness_ttl_s: float = 10.0,
        max_pending_reports: int = 1024,
        guard: Optional[ContextGuard] = None,
        trust: Optional[TrustTracker] = None,
    ) -> None:
        if staleness_ttl_s < 0:
            raise ValueError(f"staleness_ttl_s must be >= 0: {staleness_ttl_s}")
        if max_pending_reports < 1:
            raise ValueError(
                f"max_pending_reports must be >= 1: {max_pending_reports}"
            )
        self.source = source
        self.now = now
        self.staleness_ttl_s = staleness_ttl_s
        self.max_pending_reports = max_pending_reports
        self.guard = guard
        self.trust = trust
        self._cached: Optional[CongestionContext] = None
        self._cached_at = 0.0
        self._pending: Deque[ConnectionReport] = deque()
        self.decisions: Dict[ContextDecision, int] = {d: 0 for d in ContextDecision}
        self.reports_sent = 0
        self.reports_queued = 0
        self.reports_dropped = 0
        self.reports_flushed = 0
        #: Masked transport failures, counted by exception type name.
        self.transport_errors: Dict[str, int] = {}
        self._mode: Optional[ContextDecision] = None
        self._mode_since = now()
        self.mode_time_s: Dict[str, float] = {d.value: 0.0 for d in ContextDecision}

    def _count_transport_error(self, exc: BaseException) -> None:
        name = type(exc).__name__
        self.transport_errors[name] = self.transport_errors.get(name, 0) + 1

    def _decide(self, decision: ContextDecision) -> None:
        """Count a decision and charge sim time to the mode it ends."""
        self.decisions[decision] += 1
        now = self.now()
        if self._mode is not None:
            elapsed = now - self._mode_since
            self.mode_time_s[self._mode.value] += elapsed
            if elapsed > 0:
                tele = _telemetry_session()
                if tele.enabled:
                    tele.registry.counter(
                        "phi.mode_time_s", mode=self._mode.value
                    ).inc(elapsed)
        previous = self._mode
        self._mode = decision
        self._mode_since = now
        tele = _telemetry_session()
        if tele.enabled:
            tele.registry.counter(
                "phi.context_decisions", decision=decision.value
            ).inc()
        if previous is not decision:
            rec = tele.flightrec
            if rec.enabled:
                rec.phi(
                    "mode", now, "context",
                    detail={
                        "from": previous.value if previous is not None else None,
                        "to": decision.value,
                    },
                )

    def mode_times(self) -> Dict[str, float]:
        """Sim seconds spent in each decision mode, including the current one.

        A mode starts at the decision that selects it and ends at the next
        decision; the client is in no mode before its first lookup.
        """
        times = dict(self.mode_time_s)
        if self._mode is not None:
            times[self._mode.value] += self.now() - self._mode_since
        return times

    # ------------------------------------------------------------------
    # Lookup with degradation
    # ------------------------------------------------------------------
    def resolve(self) -> ResolvedContext:
        """Obtain a starting context, degrading gracefully on failure.

        Order of scrutiny: transport failure → guard rejection → trust
        gate.  Only a lookup that survives all three is cached and acted
        on; a guard-rejected snapshot is treated like a failed RPC, and
        a distrusted one is shadow-carried but not obeyed.
        """
        try:
            context = self.source.lookup()
        except TRANSPORT_ERRORS as exc:
            self._count_transport_error(exc)
            return self._degraded()
        if self.guard is not None and not self.guard.validate(context):
            return self._degraded()
        if self.trust is not None and self.trust.distrusted:
            # The channel works, so let queued history through even
            # though this sender will not act on the answer.
            self._flush_pending()
            self._decide(ContextDecision.DISTRUSTED)
            return ResolvedContext(
                ContextDecision.DISTRUSTED, None, shadow=context
            )
        self._cached = context
        self._cached_at = self.now()
        self._decide(ContextDecision.FRESH)
        self._flush_pending()
        return ResolvedContext(ContextDecision.FRESH, context)

    def observe_outcome(self, resolved: ResolvedContext, stats: ConnectionStats) -> None:
        """Score a finished connection's prediction against its outcome.

        Call with the :class:`ResolvedContext` the connection started
        from and its final stats.  FRESH/STALE contexts are scored
        directly; DISTRUSTED lookups score their ``shadow`` so recovery
        is possible without acting on untrusted state.  FALLBACK carries
        no prediction and is a no-op.
        """
        if self.trust is None:
            return
        predicted = resolved.context if resolved.context is not None else resolved.shadow
        if predicted is None:
            return
        self.trust.record_outcome(predicted.level(), stats)

    def _degraded(self) -> ResolvedContext:
        if self._cached is not None:
            age = self.now() - self._cached_at
            if age <= self.staleness_ttl_s:
                self._decide(ContextDecision.STALE)
                return ResolvedContext(ContextDecision.STALE, self._cached, age)
        self._decide(ContextDecision.FALLBACK)
        return ResolvedContext(ContextDecision.FALLBACK, None)

    def lookup(self) -> CongestionContext:
        """ContextSource parity: FALLBACK surfaces as an idle context."""
        resolved = self.resolve()
        if resolved.context is not None:
            return resolved.context
        return CongestionContext.idle(self.now())

    # ------------------------------------------------------------------
    # Reports with recovery queue
    # ------------------------------------------------------------------
    def report(self, report: ConnectionReport) -> None:
        """Send a report, queueing it for later if the channel is down."""
        self._flush_pending()
        if self._pending:
            # Still partitioned: preserve order behind the queued backlog.
            self._enqueue(report)
            return
        try:
            self.source.report(report)
        except TRANSPORT_ERRORS as exc:
            self._count_transport_error(exc)
            self._enqueue(report)
        else:
            self.reports_sent += 1

    def report_stats(self, stats) -> None:
        """Convenience parity with :class:`ContextServer`."""
        self.report(ConnectionReport.from_stats(stats, self.now()))

    def _enqueue(self, report: ConnectionReport) -> None:
        if len(self._pending) >= self.max_pending_reports:
            self._pending.popleft()
            self.reports_dropped += 1
        self._pending.append(report)
        self.reports_queued += 1

    def _flush_pending(self) -> None:
        while self._pending:
            head = self._pending[0]
            try:
                self.source.report(head)
            except TRANSPORT_ERRORS as exc:
                self._count_transport_error(exc)
                return
            self._pending.popleft()
            self.reports_sent += 1
            self.reports_flushed += 1

    @property
    def pending_reports(self) -> int:
        """Reports waiting for the channel to recover."""
        return len(self._pending)

    def decision_counts(self) -> Dict[str, int]:
        """Plain-dict decision mix (keys are decision names)."""
        return {d.value: n for d, n in self.decisions.items()}


def resilient_phi_cubic_factory(
    client: ResilientContextClient,
    policy: PolicyTable,
    *,
    now: Callable[[], float],
    fallback_params: Optional[CubicParams] = None,
):
    """A SenderFactory with fail-safe Phi coordination.

    FRESH/STALE contexts key the policy table exactly like
    :func:`~repro.phi.client.phi_cubic_factory`; FALLBACK and DISTRUSTED
    connections use ``fallback_params`` (default: stock Cubic), making a
    fully-partitioned — or fully-distrusting — deployment bit-identical
    to the uncoordinated baseline.  Each finished connection feeds the
    client's trust tracker (when one is attached) before reporting.
    """
    defaults = fallback_params if fallback_params is not None else CubicParams.default()

    def factory(
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        flow_size_bytes: int,
        on_complete: Callable[[TcpSender], None],
    ) -> TcpSender:
        resolved = client.resolve()
        if resolved.context is not None:
            params = policy.params_for(resolved.context)
        else:
            params = defaults
        # Flight recorder: the causal link between this flow and the
        # context mode it started under.
        rec = _telemetry_session().flightrec
        if rec.enabled:
            rec.phi(
                "context", sim.now, "lookup",
                detail={
                    "flow_id": spec.flow_id,
                    "decision": resolved.decision.value,
                },
            )

        def report_and_complete(sender: TcpSender) -> None:
            client.observe_outcome(resolved, sender.stats)
            client.report(ConnectionReport.from_stats(sender.stats, now()))
            on_complete(sender)

        return CubicSender(
            sim, host, spec, flow_size_bytes, report_and_complete, params=params
        )

    return factory

"""Phi client-side integration: sender factories that consult the server.

The paper's minimal protocol (Section 2.2.2): "each sender would look up
the context server once when a new connection starts (so that it can then
determine the optimal parameter settings) and would report back to the
context server once the connection ends (so that the shared state can be
updated based on the experience of that connection)."

:func:`phi_cubic_factory` and :func:`phi_remy_factory` wrap the plain
transport constructors with exactly that protocol; they return factories
compatible with :class:`repro.workload.SenderFactory` so any workload can
be made Phi-aware by swapping the factory.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Optional, Protocol

from ..remy.whisker import WhiskerTable
from ..simnet.engine import Simulator
from ..simnet.node import Host
from ..simnet.packet import FlowSpec
from ..transport.base import TcpSender
from ..transport.cubic import CubicSender
from ..transport.remycc import RemySender
from .context import CongestionContext
from .policy import PolicyTable
from .server import ConnectionReport


class ContextSource(Protocol):
    """What a client needs from the server side: lookup + report."""

    def lookup(self) -> CongestionContext:  # pragma: no cover - protocol
        ...

    def report(self, report: ConnectionReport) -> None:  # pragma: no cover
        ...


class SharingMode(Enum):
    """How fresh the shared context each sender sees is."""

    #: Up-to-the-minute ground truth on every observation (upper bound).
    IDEAL = "ideal"
    #: Snapshot at connection start, report at connection end (deployable).
    PRACTICAL = "practical"
    #: No sharing at all (the status quo baseline).
    NONE = "none"


def phi_cubic_factory(
    context_source: ContextSource,
    policy: PolicyTable,
    *,
    now: Callable[[], float],
):
    """A SenderFactory producing Phi-coordinated Cubic senders.

    Each new connection looks up the context, keys the policy table with
    it, and reports its final statistics back when it completes.
    """

    def factory(
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        flow_size_bytes: int,
        on_complete: Callable[[TcpSender], None],
    ) -> TcpSender:
        context = context_source.lookup()
        params = policy.params_for(context)

        def report_and_complete(sender: TcpSender) -> None:
            context_source.report(
                ConnectionReport.from_stats(sender.stats, now())
            )
            on_complete(sender)

        return CubicSender(
            sim, host, spec, flow_size_bytes, report_and_complete, params=params
        )

    return factory


def phi_remy_factory(
    table: WhiskerTable,
    context_source: ContextSource,
    mode: SharingMode,
    *,
    now: Callable[[], float],
    live_utilization: Optional[Callable[[], float]] = None,
):
    """A SenderFactory producing Remy / Remy-Phi senders.

    - ``SharingMode.NONE``: plain Remy (no ``u`` in the memory).
    - ``SharingMode.PRACTICAL``: ``u`` frozen at connection start from the
      context server (Remy-Phi-practical).
    - ``SharingMode.IDEAL``: ``u`` read live on every ACK via
      ``live_utilization`` (Remy-Phi-ideal); ``live_utilization`` is
      required in this mode.
    """
    if mode is SharingMode.IDEAL and live_utilization is None:
        raise ValueError("SharingMode.IDEAL requires a live_utilization callable")

    def factory(
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        flow_size_bytes: int,
        on_complete: Callable[[TcpSender], None],
    ) -> TcpSender:
        if mode is SharingMode.NONE:
            util_provider = None
        elif mode is SharingMode.IDEAL:
            util_provider = live_utilization
        else:
            frozen = context_source.lookup().utilization
            util_provider = lambda: frozen  # noqa: E731 - tiny closure

        def report_and_complete(sender: TcpSender) -> None:
            if mode is not SharingMode.NONE:
                context_source.report(
                    ConnectionReport.from_stats(sender.stats, now())
                )
            on_complete(sender)

        return RemySender(
            sim,
            host,
            spec,
            flow_size_bytes,
            report_and_complete,
            table=table,
            util_provider=util_provider,
        )

    return factory


def plain_cubic_factory(params=None):
    """A SenderFactory for unmodified Cubic (the paper's baseline)."""
    from ..transport.cubic import CubicParams

    fixed = params if params is not None else CubicParams.default()

    def factory(
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        flow_size_bytes: int,
        on_complete: Callable[[TcpSender], None],
    ) -> TcpSender:
        return CubicSender(sim, host, spec, flow_size_bytes, on_complete, params=fixed)

    return factory


def plain_remy_factory(table: WhiskerTable):
    """A SenderFactory for unmodified Remy (no shared utilization)."""

    def factory(
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        flow_size_bytes: int,
        on_complete: Callable[[TcpSender], None],
    ) -> TcpSender:
        return RemySender(
            sim, host, spec, flow_size_bytes, on_complete, table=table
        )

    return factory

"""The client <-> context-server control channel, with failures.

The paper's deployable design (Section 2.2.2) routes every connection
start through a lookup RPC and every connection end through a report RPC.
The reproduction originally modelled those as infallible function calls;
this module makes the channel a first-class, failure-aware component:

- per-attempt **latency** (with optional jitter) and **message loss**;
- **server outage windows**, either scheduled up front or driven live by
  a :class:`repro.simnet.faults.ServerOutage` via ``mark_down``/``mark_up``;
- per-call **timeout** plus bounded **exponential-backoff retry**,
  budgeted by a hard **deadline** so retries can never stall a
  connection start indefinitely;
- a **circuit breaker** that stops hammering a dead server after
  consecutive failures and probes it again after a cool-down.

RPC timing is *simulated*: each call happens atomically at the current
simulation instant, but the channel draws the latencies the attempts
would have taken and accounts them (attempts, elapsed time, outcome) in
the returned :class:`RpcResult`.  This keeps the synchronous
``ContextSource`` protocol intact — a :class:`ControlChannel` drops in
anywhere a server does — while every failure mode still surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional

from ..simnet.engine import Simulator
from ..telemetry import LATENCY_BUCKETS_S
from ..telemetry import session as _telemetry_session
from .context import CongestionContext
from .server import ConnectionReport


class RpcStatus(Enum):
    """Terminal outcome of one control-channel call (after retries)."""

    OK = "ok"
    TIMEOUT = "timeout"            # every attempt lost or over-latency
    SERVER_DOWN = "server_down"    # server unavailable for every attempt
    DEADLINE_EXCEEDED = "deadline" # retry budget exhausted before success
    CIRCUIT_OPEN = "circuit_open"  # failed fast; breaker is open


class RpcError(RuntimeError):
    """Raised by the ContextSource-compatible surface on call failure."""

    def __init__(self, result: "RpcResult") -> None:
        super().__init__(f"control-channel call failed: {result.status.value}")
        self.result = result


@dataclass(frozen=True)
class RpcResult:
    """What one call cost and how it ended."""

    status: RpcStatus
    attempts: int
    elapsed_s: float
    value: Any = None

    @property
    def ok(self) -> bool:
        return self.status is RpcStatus.OK


@dataclass(frozen=True)
class ChannelConfig:
    """Timing and reliability knobs for the control channel.

    Attributes
    ----------
    latency_s:
        Baseline round-trip time of one RPC attempt.
    jitter_s:
        Uniform extra latency in [0, jitter_s) per attempt (needs an rng).
    loss_probability:
        Chance an attempt's request or response is lost (needs an rng).
    timeout_s:
        How long the client waits for an attempt before declaring it dead.
    max_retries:
        Extra attempts after the first (0 = single shot).
    backoff_base_s / backoff_multiplier / backoff_max_s:
        Exponential backoff between attempts: attempt ``k`` (0-based)
        waits ``min(base * multiplier**k, max)`` before retrying.
    backoff_jitter:
        Uniform multiplicative jitter on each backoff: the wait is
        scaled by ``1 + U[0, backoff_jitter)`` (needs an rng).  Without
        it, every sender that hit the same outage retries on the same
        deterministic schedule and stampedes the server the instant it
        recovers; with it the retry wave decorrelates while staying a
        pure function of the run's seed.
    deadline_s:
        Hard per-call budget.  A retry is only launched if, even in the
        worst case (full backoff plus a full timeout), the call would
        still finish inside the deadline — so a connection start is
        never delayed past it.
    """

    latency_s: float = 0.005
    jitter_s: float = 0.0
    loss_probability: float = 0.0
    timeout_s: float = 0.25
    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 1.0
    backoff_jitter: float = 0.0
    deadline_s: float = 2.0

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.jitter_s < 0:
            raise ValueError(
                f"latency/jitter must be >= 0: {self.latency_s}, {self.jitter_s}"
            )
        if not 0 <= self.loss_probability < 1:
            raise ValueError(
                f"loss probability must be in [0, 1): {self.loss_probability}"
            )
        if self.timeout_s <= 0:
            raise ValueError(f"timeout must be positive: {self.timeout_s}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_multiplier < 1:
            raise ValueError(
                f"backoff multiplier must be >= 1: {self.backoff_multiplier}"
            )
        if self.backoff_jitter < 0:
            raise ValueError(
                f"backoff_jitter must be >= 0: {self.backoff_jitter}"
            )
        if self.deadline_s <= 0:
            raise ValueError(f"deadline must be positive: {self.deadline_s}")

    def backoff_s(self, attempt_index: int) -> float:
        """Backoff before retry number ``attempt_index`` (0-based)."""
        return min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_multiplier ** attempt_index,
        )


class BreakerState(Enum):
    """Classic three-state circuit breaker."""

    CLOSED = "closed"        # normal operation
    OPEN = "open"            # failing fast, not calling the server
    HALF_OPEN = "half_open"  # cool-down elapsed; next call is a probe


class CircuitBreaker:
    """Trips after ``failure_threshold`` consecutive failures.

    While OPEN, calls fail immediately (no attempts, no time spent).
    After ``reset_timeout_s`` the breaker half-opens: one probe call is
    allowed through; success re-closes it, failure re-opens it for
    another cool-down.
    """

    def __init__(
        self,
        now: Callable[[], float],
        *,
        failure_threshold: int = 5,
        reset_timeout_s: float = 10.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1: {failure_threshold}")
        if reset_timeout_s <= 0:
            raise ValueError(f"reset_timeout_s must be positive: {reset_timeout_s}")
        self._now = now
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.trips = 0

    @property
    def state(self) -> BreakerState:
        """Current state (OPEN lazily decays to HALF_OPEN after cool-down)."""
        if (
            self._state is BreakerState.OPEN
            and self._now() - self._opened_at >= self.reset_timeout_s
        ):
            self._set_state(BreakerState.HALF_OPEN)
        return self._state

    def _set_state(self, new_state: BreakerState) -> None:
        """Single funnel for state changes, so every edge is countable."""
        if new_state is self._state:
            return
        tele = _telemetry_session()
        if tele.enabled:
            tele.registry.counter(
                "phi.breaker_transitions",
                from_state=self._state.value,
                to_state=new_state.value,
            ).inc()
        rec = tele.flightrec
        if rec.enabled:
            rec.phi(
                "breaker", self._now(), "breaker",
                detail={"from": self._state.value, "to": new_state.value},
            )
        self._state = new_state

    def allow(self) -> bool:
        """Whether a call may reach the server right now."""
        return self.state is not BreakerState.OPEN

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._set_state(BreakerState.CLOSED)

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        ):
            if self._state is not BreakerState.OPEN:
                self.trips += 1
            self._set_state(BreakerState.OPEN)
            self._opened_at = self._now()
            self._consecutive_failures = 0


@dataclass
class ChannelStats:
    """Cumulative accounting across every call on one channel."""

    calls: int = 0
    successes: int = 0
    failures: int = 0
    attempts: int = 0
    retries: int = 0
    fast_failures: int = 0  # rejected by the open breaker
    rpc_time_s: float = 0.0
    by_status: dict = field(default_factory=dict)

    def record(self, result: RpcResult) -> None:
        self.calls += 1
        self.attempts += result.attempts
        self.retries += max(0, result.attempts - 1)
        self.rpc_time_s += result.elapsed_s
        if result.ok:
            self.successes += 1
        else:
            self.failures += 1
            if result.status is RpcStatus.CIRCUIT_OPEN:
                self.fast_failures += 1
        key = result.status.value
        self.by_status[key] = self.by_status.get(key, 0) + 1


class ControlChannel:
    """Failure-aware RPC front for any ``ContextSource`` backend.

    Exposes two surfaces:

    - :meth:`call_lookup` / :meth:`call_report` return an
      :class:`RpcResult` (never raise on channel failure);
    - :meth:`lookup` / :meth:`report` keep the plain ``ContextSource``
      protocol, raising :class:`RpcError` when the call fails, so the
      channel drops in wherever a server is expected.

    Availability is a down-mark *counter* so overlapping
    :class:`~repro.simnet.faults.ServerOutage` windows nest correctly.
    """

    def __init__(
        self,
        sim: Simulator,
        backend,
        *,
        config: Optional[ChannelConfig] = None,
        rng=None,
        breaker: Optional[CircuitBreaker] = None,
        corruption=None,
    ) -> None:
        self.sim = sim
        self.backend = backend
        self.config = config or ChannelConfig()
        if rng is None and (
            self.config.loss_probability > 0
            or self.config.jitter_s > 0
            or self.config.backoff_jitter > 0
        ):
            raise ValueError("loss/jitter simulation requires an rng")
        self.rng = rng
        self.breaker = breaker or CircuitBreaker(lambda: sim.now)
        #: Optional :class:`~repro.phi.corruption.CorruptionLayer`: the
        #: channel's *semantic* fault axis, alongside the loss/outage
        #: ones.  Applied to payloads of calls that succeed at the RPC
        #: level — a lookup answer corrupted in flight, a report poisoned
        #: by its sender — so transport health and payload truth fail
        #: independently, as they do in practice.
        self.corruption = corruption
        self.stats = ChannelStats()
        self._down_marks = 0

    # ------------------------------------------------------------------
    # Availability (driven by ServerOutage faults or scheduled windows)
    # ------------------------------------------------------------------
    @property
    def server_up(self) -> bool:
        """Whether the backend is reachable at this instant."""
        return self._down_marks == 0

    def mark_down(self) -> None:
        """One more reason the server is unreachable (outage begin)."""
        self._down_marks += 1

    def mark_up(self) -> None:
        """One outage ended; the server recovers when all have."""
        if self._down_marks > 0:
            self._down_marks -= 1

    def add_outage(self, start_s: float, duration_s: float) -> None:
        """Schedule an unavailability window on the simulator calendar."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        if start_s <= self.sim.now:
            # Already inside (or at) the window start: take effect now.
            self.mark_down()
            self.sim.schedule_at(
                max(self.sim.now, start_s + duration_s), self.mark_up
            )
            return
        self.sim.schedule_at(start_s, self.mark_down)
        self.sim.schedule_at(start_s + duration_s, self.mark_up)

    # ------------------------------------------------------------------
    # RPC surface
    # ------------------------------------------------------------------
    def call_lookup(self) -> RpcResult:
        """Connection-start lookup as a fallible RPC."""
        if self.corruption is None:
            return self._call(self.backend.lookup, op="lookup")
        return self._call(
            lambda: self.corruption.corrupt_context(self.backend.lookup()),
            op="lookup",
        )

    def call_report(self, report: ConnectionReport) -> RpcResult:
        """Connection-end report as a fallible RPC."""
        if self.corruption is not None:
            report = self.corruption.corrupt_report(report)
        return self._call(lambda: self.backend.report(report), op="report")

    def lookup(self) -> CongestionContext:
        """ContextSource-compatible lookup; raises :class:`RpcError`."""
        result = self.call_lookup()
        if not result.ok:
            raise RpcError(result)
        return result.value

    def report(self, report: ConnectionReport) -> None:
        """ContextSource-compatible report; raises :class:`RpcError`."""
        result = self.call_report(report)
        if not result.ok:
            raise RpcError(result)

    def report_stats(self, stats) -> None:
        """Convenience parity with :class:`ContextServer`."""
        self.report(ConnectionReport.from_stats(stats, self.sim.now))

    # ------------------------------------------------------------------
    # Attempt/retry machinery
    # ------------------------------------------------------------------
    def _attempt_latency(self) -> float:
        latency = self.config.latency_s
        if self.config.jitter_s > 0:
            latency += float(self.rng.uniform(0.0, self.config.jitter_s))
        return latency

    def _finish(self, result: RpcResult, op: str) -> RpcResult:
        """Account one terminal RPC outcome (stats and telemetry)."""
        self.stats.record(result)
        tele = _telemetry_session()
        if tele.enabled:
            registry = tele.registry
            registry.counter("phi.rpc_calls", op=op, status=result.status.value).inc()
            if result.attempts > 1:
                registry.counter("phi.rpc_retries", op=op).inc(result.attempts - 1)
            registry.histogram("phi.rpc_latency_s", LATENCY_BUCKETS_S, op=op).observe(
                result.elapsed_s
            )
            if not result.ok:
                tele.tracer.event(
                    "phi.rpc_failure",
                    sim_time=self.sim.now,
                    op=op,
                    status=result.status.value,
                    attempts=result.attempts,
                )
        rec = tele.flightrec
        if rec.enabled:
            rec.phi(
                "rpc", self.sim.now, op,
                detail={
                    "status": result.status.value,
                    "attempts": result.attempts,
                    "elapsed_s": result.elapsed_s,
                },
            )
        return result

    def _call(self, fn: Callable[[], Any], op: str = "call") -> RpcResult:
        cfg = self.config
        elapsed = 0.0
        attempts = 0
        last_status = RpcStatus.TIMEOUT
        while True:
            if not self.breaker.allow():
                return self._finish(
                    RpcResult(RpcStatus.CIRCUIT_OPEN, attempts, elapsed), op
                )
            attempts += 1
            if not self.server_up:
                # Request goes unanswered: the attempt burns a timeout.
                elapsed += cfg.timeout_s
                last_status = RpcStatus.SERVER_DOWN
                self.breaker.record_failure()
            elif cfg.loss_probability > 0 and self.rng.random() < cfg.loss_probability:
                elapsed += cfg.timeout_s
                last_status = RpcStatus.TIMEOUT
                self.breaker.record_failure()
            else:
                latency = self._attempt_latency()
                if latency > cfg.timeout_s:
                    elapsed += cfg.timeout_s
                    last_status = RpcStatus.TIMEOUT
                    self.breaker.record_failure()
                else:
                    elapsed += latency
                    self.breaker.record_success()
                    value = fn()
                    return self._finish(
                        RpcResult(RpcStatus.OK, attempts, elapsed, value), op
                    )
            # Retry, if both the attempt count and the deadline allow a
            # worst-case (backoff + full timeout) follow-up attempt.
            if attempts > cfg.max_retries:
                break
            backoff = cfg.backoff_s(attempts - 1)
            if cfg.backoff_jitter > 0:
                # Jitter scales the wait *before* the deadline check so a
                # jittered retry can never overrun the per-call budget.
                backoff *= 1.0 + float(self.rng.uniform(0.0, cfg.backoff_jitter))
            if elapsed + backoff + cfg.timeout_s > cfg.deadline_s:
                last_status = RpcStatus.DEADLINE_EXCEEDED
                break
            elapsed += backoff
        return self._finish(RpcResult(last_status, attempts, elapsed), op)

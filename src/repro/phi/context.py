"""The congestion context: Phi's shared view of the network weather.

Section 2.2.2: "the congestion context can be characterized in terms of
(i) the utilization of the bottleneck link (u), (ii) the queue occupancy
(q), and (iii) the number of competing senders (n)."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional


class CongestionLevel(Enum):
    """Coarse weather report derived from the raw (u, q, n) context.

    The levels key the parameter-policy table: "when any of these metrics
    is high, that would mean a high level of congestion and would call for
    more conservative behavior."
    """

    LOW = "low"
    MODERATE = "moderate"
    HIGH = "high"
    SEVERE = "severe"

    @property
    def rank(self) -> int:
        """Ordering: LOW < MODERATE < HIGH < SEVERE."""
        return _LEVEL_RANK[self]


_LEVEL_RANK = {
    CongestionLevel.LOW: 0,
    CongestionLevel.MODERATE: 1,
    CongestionLevel.HIGH: 2,
    CongestionLevel.SEVERE: 3,
}

#: Utilization thresholds between LOW/MODERATE/HIGH/SEVERE.
UTILIZATION_THRESHOLDS = (0.35, 0.65, 0.90)

#: Queueing-delay thresholds (seconds) that can escalate the level.
QUEUE_DELAY_THRESHOLDS = (0.010, 0.050, 0.200)

#: Per-connection fair-share thresholds (Mbit/s) below which the sender
#: count ``n`` alone implies MODERATE/HIGH/SEVERE congestion.  Unlike the
#: report-driven ``u`` and ``q`` estimates, ``n`` is known to the context
#: server in real time (every lookup registers a connection), so this
#: bucket reacts instantly to sender bursts.
FAIR_SHARE_THRESHOLDS_MBPS = (8.0, 2.0, 0.5)


@dataclass(frozen=True)
class CongestionContext:
    """One snapshot of the shared network weather.

    Attributes
    ----------
    utilization:
        Bottleneck link utilization ``u`` in [0, 1].
    queue_delay_s:
        Queueing-delay proxy ``q``: RTT inflation over the minimum RTT.
    competing_senders:
        Number of concurrently active connections ``n``.
    timestamp:
        Simulation time the context was computed at (staleness tracking).
    """

    utilization: float
    queue_delay_s: float
    competing_senders: float
    timestamp: float = 0.0
    fair_share_mbps: Optional[float] = None

    def __post_init__(self) -> None:
        # Finiteness first: NaN compares False against any bound, so the
        # range checks below would silently wave NaN through (and level()
        # would then bucket it to SEVERE).  Reject non-finite inputs for
        # every field instead.
        for name in ("utilization", "queue_delay_s", "competing_senders",
                     "timestamp", "fair_share_mbps"):
            value = getattr(self, name)
            if value is None:
                continue
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite: {value!r}")
        if not 0.0 <= self.utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1]: {self.utilization}")
        if self.queue_delay_s < 0:
            raise ValueError(f"queue_delay_s must be >= 0: {self.queue_delay_s}")
        if self.competing_senders < 0:
            raise ValueError(
                f"competing_senders must be >= 0: {self.competing_senders}"
            )
        if self.fair_share_mbps is not None and self.fair_share_mbps < 0:
            raise ValueError(
                f"fair_share_mbps must be >= 0: {self.fair_share_mbps}"
            )

    def level(self) -> CongestionLevel:
        """Discretize (u, q, n) into a :class:`CongestionLevel`.

        The level is the *worst* across the per-metric buckets — "when any
        of these metrics is high, that would mean a high level [of]
        congestion".  The ``n`` bucket uses the per-connection fair share
        when the context carries one.
        """
        by_util = _bucket(self.utilization, UTILIZATION_THRESHOLDS)
        by_queue = _bucket(self.queue_delay_s, QUEUE_DELAY_THRESHOLDS)
        level = max(by_util, by_queue, key=lambda lvl: lvl.rank)
        if self.fair_share_mbps is not None:
            by_share = _bucket_descending(
                self.fair_share_mbps, FAIR_SHARE_THRESHOLDS_MBPS
            )
            level = max(level, by_share, key=lambda lvl: lvl.rank)
        return level

    def is_stale(self, now: float, max_age_s: float) -> bool:
        """Whether this snapshot is older than ``max_age_s``."""
        return (now - self.timestamp) > max_age_s

    @classmethod
    def idle(cls, timestamp: float = 0.0) -> "CongestionContext":
        """The context of a quiet network."""
        return cls(
            utilization=0.0,
            queue_delay_s=0.0,
            competing_senders=0.0,
            timestamp=timestamp,
        )


_LEVELS_ASCENDING = (
    CongestionLevel.LOW,
    CongestionLevel.MODERATE,
    CongestionLevel.HIGH,
    CongestionLevel.SEVERE,
)


def _bucket(value: float, thresholds) -> CongestionLevel:
    """Bucket where *larger* values mean more congestion."""
    for level, threshold in zip(_LEVELS_ASCENDING, thresholds):
        if value < threshold:
            return level
    return CongestionLevel.SEVERE


def _bucket_descending(value: float, thresholds) -> CongestionLevel:
    """Bucket where *smaller* values mean more congestion (fair share)."""
    for level, threshold in zip(_LEVELS_ASCENDING, thresholds):
        if value > threshold:
            return level
    return CongestionLevel.SEVERE

"""The Phi context server.

Section 2.2.2: "we envisage a *context server*, say within a domain
(i.e., within one of the 'five' computers), that serves as the repository
of shared state from which the congestion context can be computed.
Information from senders on when and how much data is transferred would
enable estimation of u and n, while the difference between the current
RTT and the minimum RTT would give an indication of q."

Two operating modes are provided:

- **practical** (:class:`ContextServer`): the server only learns from the
  minimal protocol — a lookup when a connection starts and a report when
  it ends — and estimates (u, q, n) from those reports.
- **ideal** (:class:`IdealContextOracle`): wired straight to the
  simulator's bottleneck instrumentation, giving every sender
  "up-to-the-minute" ground truth.  This is the upper bound the paper
  calls Remy-Phi-ideal / the fully-shared Cubic setting.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence

from ..simnet.engine import Simulator
from ..simnet.monitor import ActiveFlowTracker, LinkMonitor
from ..telemetry import session as _telemetry_session
from ..transport.base import ConnectionStats
from .context import CongestionContext


@dataclass(frozen=True)
class ConnectionReport:
    """What a sender tells the context server when a connection ends."""

    flow_id: int
    reported_at: float
    bytes_transferred: int
    duration_s: float
    mean_rtt_s: float
    min_rtt_s: float
    loss_indicator: float

    @classmethod
    def from_stats(cls, stats: ConnectionStats, reported_at: float) -> "ConnectionReport":
        """Build a report from a connection's final statistics."""
        min_rtt = stats.min_rtt if stats.rtt_samples else 0.0
        return cls(
            flow_id=stats.flow_id,
            reported_at=reported_at,
            bytes_transferred=stats.bytes_goodput,
            duration_s=stats.duration,
            mean_rtt_s=stats.mean_rtt,
            min_rtt_s=min_rtt,
            loss_indicator=stats.loss_indicator,
        )

    @property
    def queue_delay_s(self) -> float:
        """RTT inflation this connection observed (the ``q`` signal)."""
        if self.min_rtt_s <= 0:
            return 0.0
        return max(0.0, self.mean_rtt_s - self.min_rtt_s)


@dataclass(frozen=True)
class RobustAggregationConfig:
    """Byzantine-resistant estimation knobs for :class:`ContextServer`.

    With a robust config the server (a) rejects reports whose fields are
    not even well-formed telemetry and (b) aggregates the remainder so no
    single reporter moves an estimate much: queue delay and loss use a
    trimmed mean over the window's reports instead of a last-writer-wins
    EWMA, and each report's contribution to utilization is capped at a
    multiple of the window's median contribution.

    Attributes
    ----------
    trim_fraction:
        Fraction of reports discarded from *each* tail before averaging
        queue delay and loss.  0.2 tolerates up to 20% colluding liars.
    influence_bound:
        Cap on one report's goodput contribution, as a multiple of the
        median positive contribution in the window.  Bounds the damage
        of a single "I transferred a petabyte" report.
    min_reports_for_trim:
        Below this many reports in the window, trimming would discard
        most of the evidence; the server falls back to the EWMA path.
    """

    trim_fraction: float = 0.2
    influence_bound: float = 4.0
    min_reports_for_trim: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.trim_fraction < 0.5:
            raise ValueError(
                f"trim_fraction must be in [0, 0.5): {self.trim_fraction}"
            )
        if self.influence_bound < 1.0:
            raise ValueError(
                f"influence_bound must be >= 1: {self.influence_bound}"
            )
        if self.min_reports_for_trim < 1:
            raise ValueError(
                f"min_reports_for_trim must be >= 1: {self.min_reports_for_trim}"
            )


def _trimmed_mean(values: Sequence[float], trim_fraction: float) -> float:
    """Mean after dropping ``trim_fraction`` of samples from each tail."""
    ordered = sorted(values)
    k = int(len(ordered) * trim_fraction)
    kept = ordered[k : len(ordered) - k] if k else ordered
    if not kept:
        kept = ordered
    return sum(kept) / len(kept)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def report_invalid_reason(report: ConnectionReport) -> Optional[str]:
    """Why a report is not even well-formed telemetry (``None`` if it is).

    Reports arrive from untrusted senders over the wire, so — like
    contexts (see :func:`~repro.phi.corruption.raw_context`) — their
    dataclass invariants cannot be assumed to have run.
    """
    for name in (
        "reported_at",
        "bytes_transferred",
        "duration_s",
        "mean_rtt_s",
        "min_rtt_s",
        "loss_indicator",
    ):
        value = getattr(report, name)
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            return "non_finite"
    if report.bytes_transferred < 0:
        return "negative_bytes"
    if report.duration_s < 0:
        return "negative_duration"
    if report.mean_rtt_s < 0 or report.min_rtt_s < 0:
        return "negative_rtt"
    if not 0.0 <= report.loss_indicator <= 1.0:
        return "loss_out_of_range"
    return None


class ContextServer:
    """Practical shared-state repository fed by start/end protocol messages.

    Parameters
    ----------
    sim:
        Simulator (for timestamps).
    bottleneck_capacity_bps:
        Known egress capacity toward the destination aggregate (a cloud
        provider knows its provisioned WAN capacity).  Utilization is
        estimated as recently-reported goodput over this capacity.
    window_s:
        Sliding estimation window.  Reports older than this age out.
    ewma_alpha:
        Smoothing for the queue-delay and loss estimates.
    lease_ttl_s:
        How long a lookup counts toward ``n`` without a matching report.
        A sender that crashes (or whose report is lost) would otherwise
        inflate the active-connection count forever; its lease expires
        after this long instead.  ``None`` disables expiry.
    robust:
        Optional :class:`RobustAggregationConfig`.  When set, malformed
        reports are rejected outright and the (u, q) estimates switch
        from EWMA / raw sums to trimmed means and influence-capped sums
        so a minority of Byzantine reporters cannot steer them.  The
        default (``None``) preserves the original trusting estimators
        bit-for-bit.
    """

    def __init__(
        self,
        sim: Simulator,
        bottleneck_capacity_bps: float,
        *,
        window_s: float = 10.0,
        ewma_alpha: float = 0.3,
        lease_ttl_s: Optional[float] = 300.0,
        robust: Optional[RobustAggregationConfig] = None,
    ) -> None:
        if bottleneck_capacity_bps <= 0:
            raise ValueError(
                f"capacity must be positive: {bottleneck_capacity_bps}"
            )
        if window_s <= 0:
            raise ValueError(f"window_s must be positive: {window_s}")
        if not 0 < ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha must be in (0, 1]: {ewma_alpha}")
        if lease_ttl_s is not None and lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be positive: {lease_ttl_s}")
        self.sim = sim
        self.capacity_bps = bottleneck_capacity_bps
        self.window_s = window_s
        self.ewma_alpha = ewma_alpha
        self.lease_ttl_s = lease_ttl_s
        self.robust = robust

        self._reports: Deque[ConnectionReport] = deque()
        #: Lookup timestamps whose connections have not reported back yet;
        #: each is a lease on one slot of ``n``.
        self._leases: Deque[float] = deque()
        self._queue_delay_ewma = 0.0
        self._loss_ewma = 0.0
        self._have_estimate = False

        self.lookups = 0
        self.reports_received = 0
        self.reports_absorbed = 0
        self.leases_expired = 0
        self.reports_rejected = 0
        self.report_rejections: dict = {}

    # ------------------------------------------------------------------
    # Protocol: lookup at connection start, report at connection end.
    # ------------------------------------------------------------------
    def lookup(self) -> CongestionContext:
        """Connection-start query: the current congestion context.

        Also registers the connection as active (the lookup itself tells
        the server a new connection is starting, contributing to ``n``)
        by taking out a lease that a later report releases — or that
        expires after ``lease_ttl_s`` if the sender never reports back.
        """
        self.lookups += 1
        self._expire_leases()
        self._leases.append(self.sim.now)
        return self.current_context()

    def report(self, report: ConnectionReport) -> None:
        """Connection-end report: fold the connection's experience in.

        With a robust config, a malformed report is dropped whole before
        it touches any estimator state — including its lease release, so
        a garbage-spewing reporter ages out via the lease TTL like a
        crashed sender rather than silently shrinking ``n``.
        """
        self.reports_received += 1
        if self.robust is not None:
            reason = report_invalid_reason(report)
            if reason is not None:
                self.reports_rejected += 1
                self.report_rejections[reason] = (
                    self.report_rejections.get(reason, 0) + 1
                )
                tele = _telemetry_session()
                if tele.enabled:
                    tele.registry.counter(
                        "phi.report_rejections", reason=reason
                    ).inc()
                return
        self._expire_leases()
        if self._leases:
            # Release the oldest outstanding lease (reports carry no
            # lookup id in the paper's minimal protocol, so FIFO pairing
            # is the best-effort match).
            self._leases.popleft()
        self._reports.append(report)
        self._expire_old_reports()
        self._fold_estimates(report)

    def _fold_estimates(self, report: ConnectionReport) -> None:
        """Fold one report into the queue-delay and loss EWMAs."""
        alpha = self.ewma_alpha
        if not self._have_estimate:
            self._queue_delay_ewma = report.queue_delay_s
            self._loss_ewma = report.loss_indicator
            self._have_estimate = True
        else:
            self._queue_delay_ewma = (
                (1 - alpha) * self._queue_delay_ewma + alpha * report.queue_delay_s
            )
            self._loss_ewma = (
                (1 - alpha) * self._loss_ewma + alpha * report.loss_indicator
            )

    def report_stats(self, stats: ConnectionStats) -> None:
        """Convenience: build and submit a report from final stats."""
        self.report(ConnectionReport.from_stats(stats, self.sim.now))

    # ------------------------------------------------------------------
    # Replication hooks (anti-entropy; see repro.phi.replication)
    # ------------------------------------------------------------------
    def absorb(self, report: ConnectionReport) -> None:
        """Fold a report learned from a peer replica into the estimators.

        Anti-entropy replay: the replica that served the original lookup
        already handled the lease lifecycle, so — unlike :meth:`report` —
        no lease is released here.  The report is inserted in
        ``reported_at`` order (it may predate locally received reports)
        so the sliding-window expiry logic stays valid.  Robust-mode
        validation still applies; a report that has already aged out of
        the window teaches nothing and is skipped.
        """
        if self.robust is not None and report_invalid_reason(report) is not None:
            # A peer should never replicate garbage (it validates on
            # receipt), but a robust server stays robust regardless.
            return
        self._expire_old_reports()
        if report.reported_at < self.sim.now - self.window_s:
            return
        index = len(self._reports)
        while index > 0 and self._reports[index - 1].reported_at > report.reported_at:
            index -= 1
        self._reports.insert(index, report)
        self._fold_estimates(report)
        self.reports_absorbed += 1

    def reset_leases(self, timestamps: Sequence[float]) -> None:
        """Replace the outstanding-lease table wholesale.

        Used by anti-entropy reconciliation: after replicas exchange
        lease issue/release knowledge, each server's table is rewritten
        to the merged view (sorted, so FIFO release and TTL expiry keep
        popping oldest-first).
        """
        self._leases = deque(sorted(timestamps))

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _expire_old_reports(self) -> None:
        horizon = self.sim.now - self.window_s
        while self._reports and self._reports[0].reported_at < horizon:
            self._reports.popleft()

    def _expire_leases(self) -> None:
        if self.lease_ttl_s is None:
            return
        horizon = self.sim.now - self.lease_ttl_s
        while self._leases and self._leases[0] <= horizon:
            self._leases.popleft()
            self.leases_expired += 1

    def estimated_utilization(self) -> float:
        """u: recently reported goodput over the known capacity.

        Each report contributes the portion of its transfer that overlaps
        the sliding window, so long connections are not over-counted.
        """
        self._expire_old_reports()
        window_start = max(0.0, self.sim.now - self.window_s)
        window_len = max(1e-9, self.sim.now - window_start)
        contributions: List[float] = []
        for report in self._reports:
            conn_start = report.reported_at - report.duration_s
            overlap = min(report.reported_at, self.sim.now) - max(
                conn_start, window_start
            )
            if overlap <= 0 or report.duration_s <= 0:
                continue
            fraction = min(1.0, overlap / report.duration_s)
            contributions.append(report.bytes_transferred * 8.0 * fraction)
        bits = sum(self._bound_influence(contributions))
        return min(1.0, bits / (self.capacity_bps * window_len))

    def _bound_influence(self, contributions: List[float]) -> List[float]:
        """Cap per-report goodput contributions under robust aggregation.

        A Byzantine reporter claiming an absurd transfer is clipped to
        ``influence_bound`` times the median honest contribution, so it
        can nudge the utilization estimate but not saturate it alone.
        """
        robust = self.robust
        if robust is None or len(contributions) < robust.min_reports_for_trim:
            return contributions
        positive = [c for c in contributions if c > 0]
        if not positive:
            return contributions
        cap = robust.influence_bound * _median(positive)
        return [min(c, cap) for c in contributions]

    def _windowed_trim(self, values: List[float], fallback: float) -> float:
        robust = self.robust
        if robust is None or len(values) < robust.min_reports_for_trim:
            return fallback
        return _trimmed_mean(values, robust.trim_fraction)

    def estimated_queue_delay(self) -> float:
        """q: EWMA of reported RTT inflation.

        Under robust aggregation (and enough reports in the window) this
        becomes a trimmed mean over the window's reports: a minority of
        outlier reporters — however extreme — are discarded from both
        tails instead of being smoothed *into* the estimate.
        """
        self._expire_old_reports()
        return self._windowed_trim(
            [r.queue_delay_s for r in self._reports], self._queue_delay_ewma
        )

    def estimated_loss(self) -> float:
        """EWMA of reported loss indicators (informs conservative policies).

        Trimmed mean over the window under robust aggregation, like
        :meth:`estimated_queue_delay`.
        """
        self._expire_old_reports()
        return self._windowed_trim(
            [r.loss_indicator for r in self._reports], self._loss_ewma
        )

    @property
    def active_connections(self) -> int:
        """n: unexpired lookups that have not yet reported back."""
        self._expire_leases()
        return len(self._leases)

    def current_context(self) -> CongestionContext:
        """Assemble the (u, q, n) snapshot from the practical estimates.

        ``n`` (and the fair share derived from it) is exact in real time:
        the server counts leases — lookups that have neither reported
        back nor expired.
        """
        n = self.active_connections
        fair_share = self.capacity_bps / max(1, n) / 1e6
        return CongestionContext(
            utilization=self.estimated_utilization(),
            queue_delay_s=self.estimated_queue_delay(),
            competing_senders=float(n),
            timestamp=self.sim.now,
            fair_share_mbps=fair_share,
        )


class IdealContextOracle:
    """Ground-truth context source (the paper's "ideal" setting).

    Reads the bottleneck's :class:`LinkMonitor` and the
    :class:`ActiveFlowTracker` directly, so every lookup returns
    up-to-the-minute truth with no estimation error or staleness.
    """

    def __init__(
        self,
        sim: Simulator,
        monitor: LinkMonitor,
        flow_tracker: Optional[ActiveFlowTracker] = None,
        *,
        window: int = 10,
    ) -> None:
        self.sim = sim
        self.monitor = monitor
        self.flow_tracker = flow_tracker
        self.window = window
        self.lookups = 0

    def lookup(self) -> CongestionContext:
        """Connection-start query (same protocol surface as the server)."""
        self.lookups += 1
        return self.current_context()

    def report(self, report: ConnectionReport) -> None:
        """Reports are accepted for interface parity but unnecessary."""

    def report_stats(self, stats: ConnectionStats) -> None:
        """Interface parity with :class:`ContextServer`."""

    def current_context(self) -> CongestionContext:
        """Snapshot straight from the link instrumentation."""
        queue_bytes = self.monitor.current_queue_bytes(self.window)
        queue_delay = queue_bytes * 8.0 / self.monitor.link.bandwidth_bps
        n = float(self.flow_tracker.active_flows) if self.flow_tracker else 0.0
        fair_share = self.monitor.link.bandwidth_bps / max(1.0, n) / 1e6
        return CongestionContext(
            utilization=self.monitor.current_utilization(self.window),
            queue_delay_s=queue_delay,
            competing_senders=n,
            timestamp=self.sim.now,
            fair_share_mbps=fair_share,
        )

    def utilization_provider(self) -> Callable[[], float]:
        """A live ``u`` callable for Remy-Phi-ideal memory tracking."""
        return lambda: self.monitor.current_utilization(self.window)

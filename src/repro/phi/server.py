"""The Phi context server.

Section 2.2.2: "we envisage a *context server*, say within a domain
(i.e., within one of the 'five' computers), that serves as the repository
of shared state from which the congestion context can be computed.
Information from senders on when and how much data is transferred would
enable estimation of u and n, while the difference between the current
RTT and the minimum RTT would give an indication of q."

Two operating modes are provided:

- **practical** (:class:`ContextServer`): the server only learns from the
  minimal protocol — a lookup when a connection starts and a report when
  it ends — and estimates (u, q, n) from those reports.
- **ideal** (:class:`IdealContextOracle`): wired straight to the
  simulator's bottleneck instrumentation, giving every sender
  "up-to-the-minute" ground truth.  This is the upper bound the paper
  calls Remy-Phi-ideal / the fully-shared Cubic setting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from ..simnet.engine import Simulator
from ..simnet.monitor import ActiveFlowTracker, LinkMonitor
from ..transport.base import ConnectionStats
from .context import CongestionContext


@dataclass(frozen=True)
class ConnectionReport:
    """What a sender tells the context server when a connection ends."""

    flow_id: int
    reported_at: float
    bytes_transferred: int
    duration_s: float
    mean_rtt_s: float
    min_rtt_s: float
    loss_indicator: float

    @classmethod
    def from_stats(cls, stats: ConnectionStats, reported_at: float) -> "ConnectionReport":
        """Build a report from a connection's final statistics."""
        min_rtt = stats.min_rtt if stats.rtt_samples else 0.0
        return cls(
            flow_id=stats.flow_id,
            reported_at=reported_at,
            bytes_transferred=stats.bytes_goodput,
            duration_s=stats.duration,
            mean_rtt_s=stats.mean_rtt,
            min_rtt_s=min_rtt,
            loss_indicator=stats.loss_indicator,
        )

    @property
    def queue_delay_s(self) -> float:
        """RTT inflation this connection observed (the ``q`` signal)."""
        if self.min_rtt_s <= 0:
            return 0.0
        return max(0.0, self.mean_rtt_s - self.min_rtt_s)


class ContextServer:
    """Practical shared-state repository fed by start/end protocol messages.

    Parameters
    ----------
    sim:
        Simulator (for timestamps).
    bottleneck_capacity_bps:
        Known egress capacity toward the destination aggregate (a cloud
        provider knows its provisioned WAN capacity).  Utilization is
        estimated as recently-reported goodput over this capacity.
    window_s:
        Sliding estimation window.  Reports older than this age out.
    ewma_alpha:
        Smoothing for the queue-delay and loss estimates.
    lease_ttl_s:
        How long a lookup counts toward ``n`` without a matching report.
        A sender that crashes (or whose report is lost) would otherwise
        inflate the active-connection count forever; its lease expires
        after this long instead.  ``None`` disables expiry.
    """

    def __init__(
        self,
        sim: Simulator,
        bottleneck_capacity_bps: float,
        *,
        window_s: float = 10.0,
        ewma_alpha: float = 0.3,
        lease_ttl_s: Optional[float] = 300.0,
    ) -> None:
        if bottleneck_capacity_bps <= 0:
            raise ValueError(
                f"capacity must be positive: {bottleneck_capacity_bps}"
            )
        if window_s <= 0:
            raise ValueError(f"window_s must be positive: {window_s}")
        if not 0 < ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha must be in (0, 1]: {ewma_alpha}")
        if lease_ttl_s is not None and lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be positive: {lease_ttl_s}")
        self.sim = sim
        self.capacity_bps = bottleneck_capacity_bps
        self.window_s = window_s
        self.ewma_alpha = ewma_alpha
        self.lease_ttl_s = lease_ttl_s

        self._reports: Deque[ConnectionReport] = deque()
        #: Lookup timestamps whose connections have not reported back yet;
        #: each is a lease on one slot of ``n``.
        self._leases: Deque[float] = deque()
        self._queue_delay_ewma = 0.0
        self._loss_ewma = 0.0
        self._have_estimate = False

        self.lookups = 0
        self.reports_received = 0
        self.leases_expired = 0

    # ------------------------------------------------------------------
    # Protocol: lookup at connection start, report at connection end.
    # ------------------------------------------------------------------
    def lookup(self) -> CongestionContext:
        """Connection-start query: the current congestion context.

        Also registers the connection as active (the lookup itself tells
        the server a new connection is starting, contributing to ``n``)
        by taking out a lease that a later report releases — or that
        expires after ``lease_ttl_s`` if the sender never reports back.
        """
        self.lookups += 1
        self._expire_leases()
        self._leases.append(self.sim.now)
        return self.current_context()

    def report(self, report: ConnectionReport) -> None:
        """Connection-end report: fold the connection's experience in."""
        self.reports_received += 1
        self._expire_leases()
        if self._leases:
            # Release the oldest outstanding lease (reports carry no
            # lookup id in the paper's minimal protocol, so FIFO pairing
            # is the best-effort match).
            self._leases.popleft()
        self._reports.append(report)
        self._expire_old_reports()
        alpha = self.ewma_alpha
        if not self._have_estimate:
            self._queue_delay_ewma = report.queue_delay_s
            self._loss_ewma = report.loss_indicator
            self._have_estimate = True
        else:
            self._queue_delay_ewma = (
                (1 - alpha) * self._queue_delay_ewma + alpha * report.queue_delay_s
            )
            self._loss_ewma = (
                (1 - alpha) * self._loss_ewma + alpha * report.loss_indicator
            )

    def report_stats(self, stats: ConnectionStats) -> None:
        """Convenience: build and submit a report from final stats."""
        self.report(ConnectionReport.from_stats(stats, self.sim.now))

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _expire_old_reports(self) -> None:
        horizon = self.sim.now - self.window_s
        while self._reports and self._reports[0].reported_at < horizon:
            self._reports.popleft()

    def _expire_leases(self) -> None:
        if self.lease_ttl_s is None:
            return
        horizon = self.sim.now - self.lease_ttl_s
        while self._leases and self._leases[0] <= horizon:
            self._leases.popleft()
            self.leases_expired += 1

    def estimated_utilization(self) -> float:
        """u: recently reported goodput over the known capacity.

        Each report contributes the portion of its transfer that overlaps
        the sliding window, so long connections are not over-counted.
        """
        self._expire_old_reports()
        window_start = max(0.0, self.sim.now - self.window_s)
        window_len = max(1e-9, self.sim.now - window_start)
        bits = 0.0
        for report in self._reports:
            conn_start = report.reported_at - report.duration_s
            overlap = min(report.reported_at, self.sim.now) - max(
                conn_start, window_start
            )
            if overlap <= 0 or report.duration_s <= 0:
                continue
            fraction = min(1.0, overlap / report.duration_s)
            bits += report.bytes_transferred * 8.0 * fraction
        return min(1.0, bits / (self.capacity_bps * window_len))

    def estimated_queue_delay(self) -> float:
        """q: EWMA of reported RTT inflation."""
        return self._queue_delay_ewma

    def estimated_loss(self) -> float:
        """EWMA of reported loss indicators (informs conservative policies)."""
        return self._loss_ewma

    @property
    def active_connections(self) -> int:
        """n: unexpired lookups that have not yet reported back."""
        self._expire_leases()
        return len(self._leases)

    def current_context(self) -> CongestionContext:
        """Assemble the (u, q, n) snapshot from the practical estimates.

        ``n`` (and the fair share derived from it) is exact in real time:
        the server counts leases — lookups that have neither reported
        back nor expired.
        """
        n = self.active_connections
        fair_share = self.capacity_bps / max(1, n) / 1e6
        return CongestionContext(
            utilization=self.estimated_utilization(),
            queue_delay_s=self.estimated_queue_delay(),
            competing_senders=float(n),
            timestamp=self.sim.now,
            fair_share_mbps=fair_share,
        )


class IdealContextOracle:
    """Ground-truth context source (the paper's "ideal" setting).

    Reads the bottleneck's :class:`LinkMonitor` and the
    :class:`ActiveFlowTracker` directly, so every lookup returns
    up-to-the-minute truth with no estimation error or staleness.
    """

    def __init__(
        self,
        sim: Simulator,
        monitor: LinkMonitor,
        flow_tracker: Optional[ActiveFlowTracker] = None,
        *,
        window: int = 10,
    ) -> None:
        self.sim = sim
        self.monitor = monitor
        self.flow_tracker = flow_tracker
        self.window = window
        self.lookups = 0

    def lookup(self) -> CongestionContext:
        """Connection-start query (same protocol surface as the server)."""
        self.lookups += 1
        return self.current_context()

    def report(self, report: ConnectionReport) -> None:
        """Reports are accepted for interface parity but unnecessary."""

    def report_stats(self, stats: ConnectionStats) -> None:
        """Interface parity with :class:`ContextServer`."""

    def current_context(self) -> CongestionContext:
        """Snapshot straight from the link instrumentation."""
        queue_bytes = self.monitor.current_queue_bytes(self.window)
        queue_delay = queue_bytes * 8.0 / self.monitor.link.bandwidth_bps
        n = float(self.flow_tracker.active_flows) if self.flow_tracker else 0.0
        fair_share = self.monitor.link.bandwidth_bps / max(1.0, n) / 1e6
        return CongestionContext(
            utilization=self.monitor.current_utilization(self.window),
            queue_delay_s=queue_delay,
            competing_senders=n,
            timestamp=self.sim.now,
            fair_share_mbps=fair_share,
        )

    def utilization_provider(self) -> Callable[[], float]:
        """A live ``u`` callable for Remy-Phi-ideal memory tracking."""
        return lambda: self.monitor.current_utilization(self.window)

"""Parameter policies: congestion context -> TCP Cubic parameters.

A :class:`PolicyTable` stores, per :class:`CongestionLevel`, the Cubic
parameter triple found optimal for that level (by the offline sweep in
:mod:`repro.phi.optimizer`).  New connections look the policy up with
the context-server snapshot.

"The optimal case uses a larger initial window but a smaller slow start
threshold than the default case. And as we would expect, the optimal
settings of these parameters shift to be smaller as the link utilization
becomes higher."  :data:`REFERENCE_POLICY` encodes exactly that shape; it
is the shipped default for users who have not run their own sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Mapping

from ..transport.cubic import CubicParams
from .context import CongestionContext, CongestionLevel


class PolicyTable:
    """Maps congestion levels to Cubic parameter settings."""

    def __init__(self, entries: Mapping[CongestionLevel, CubicParams]) -> None:
        missing = set(CongestionLevel) - set(entries)
        if missing:
            raise ValueError(
                f"policy table must cover every congestion level; missing "
                f"{sorted(level.value for level in missing)}"
            )
        self._entries: Dict[CongestionLevel, CubicParams] = dict(entries)

    def params_for(self, context: CongestionContext) -> CubicParams:
        """The parameter triple for the given context snapshot."""
        return self._entries[context.level()]

    def params_for_level(self, level: CongestionLevel) -> CubicParams:
        """The parameter triple for an explicit level."""
        return self._entries[level]

    def with_entry(self, level: CongestionLevel, params: CubicParams) -> "PolicyTable":
        """A copy with one level's entry replaced."""
        entries = dict(self._entries)
        entries[level] = params
        return PolicyTable(entries)

    def as_dict(self) -> Dict[str, dict]:
        """Plain-dict form (keys are level names)."""
        return {
            level.value: params.as_dict() for level, params in self._entries.items()
        }

    def to_json(self) -> str:
        """Serialize for shipping alongside benches."""
        return json.dumps(self.as_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "PolicyTable":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        entries = {
            CongestionLevel(name): CubicParams(**params)
            for name, params in payload.items()
        }
        return cls(entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicyTable):
            return NotImplemented
        return self._entries == other._entries


#: A reference policy with the qualitative shape the paper reports: larger
#: initial windows than the default everywhere, slow-start thresholds far
#: below the "arbitrarily large" default, both shrinking as congestion
#: rises, and a sharper back-off (larger beta) under persistent load.
REFERENCE_POLICY = PolicyTable(
    {
        CongestionLevel.LOW: CubicParams(
            window_init=32.0, initial_ssthresh=128.0, beta=0.2
        ),
        CongestionLevel.MODERATE: CubicParams(
            window_init=16.0, initial_ssthresh=64.0, beta=0.3
        ),
        CongestionLevel.HIGH: CubicParams(
            window_init=4.0, initial_ssthresh=16.0, beta=0.5
        ),
        CongestionLevel.SEVERE: CubicParams(
            window_init=2.0, initial_ssthresh=4.0, beta=0.7
        ),
    }
)


@dataclass(frozen=True)
class PolicyDecision:
    """A policy lookup outcome, kept for auditing/diagnosis."""

    context: CongestionContext
    params: CubicParams

    @property
    def level(self) -> CongestionLevel:
        """The discretized level the decision keyed on."""
        return self.context.level()

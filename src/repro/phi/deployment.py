"""Deployment mixes: full, partial, and no coordination.

Section 2.2.3 (Figure 4) studies incremental deployment: "one half of the
senders ('unmodified') sticks with the default parameter settings for TCP
Cubic, while the other half ('modified') uses the parameter setting that
would have been optimal had all senders been cooperating."

:func:`deployment_factories` assigns a factory per sender slot for an
arbitrary modified fraction, enabling both Figure 4 (fraction = 0.5) and
the adoption-incentive ablation (fraction swept 0 -> 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Sequence


class DeploymentMode(Enum):
    """Named deployment scenarios from the paper (and beyond it)."""

    NONE = "none"          # All senders unmodified (status quo).
    PARTIAL = "partial"    # Figure 4: a fraction of senders modified.
    FULL = "full"          # Section 2.2.1/2.2.2: everyone coordinates.
    #: Everyone coordinates through a replicated control plane
    #: (:class:`repro.phi.replication.ReplicatedContextService` behind
    #: per-sender failover) — the partition-tolerant X7 deployment.
    REPLICATED = "replicated"


@dataclass(frozen=True)
class SenderAssignment:
    """Which factory a sender slot uses, and whether it is Phi-modified."""

    index: int
    modified: bool
    factory: Callable


def deployment_factories(
    n_senders: int,
    modified_fraction: float,
    modified_factory: Callable,
    unmodified_factory: Callable,
) -> List[SenderAssignment]:
    """Assign factories to sender slots for a partial deployment.

    The first ``round(n * fraction)`` slots are modified — deterministic,
    so seeded runs are reproducible; slot order carries no meaning in a
    symmetric dumbbell.
    """
    if n_senders <= 0:
        raise ValueError(f"n_senders must be positive: {n_senders}")
    if not 0.0 <= modified_fraction <= 1.0:
        raise ValueError(
            f"modified_fraction must be in [0, 1]: {modified_fraction}"
        )
    n_modified = round(n_senders * modified_fraction)
    assignments = []
    for index in range(n_senders):
        modified = index < n_modified
        assignments.append(
            SenderAssignment(
                index=index,
                modified=modified,
                factory=modified_factory if modified else unmodified_factory,
            )
        )
    return assignments


def split_stats(
    assignments: Sequence[SenderAssignment],
    per_sender_stats: Sequence[list],
) -> tuple:
    """Split per-sender stat lists into (modified, unmodified) pools."""
    if len(assignments) != len(per_sender_stats):
        raise ValueError(
            f"{len(assignments)} assignments vs {len(per_sender_stats)} stat lists"
        )
    modified: list = []
    unmodified: list = []
    for assignment, stats in zip(assignments, per_sender_stats):
        target = modified if assignment.modified else unmodified
        target.extend(stats)
    return modified, unmodified

"""Offline parameter optimization: the Table-2 sweep and its analyses.

The optimizer is decoupled from the simulator through an *evaluator*
callable — ``evaluator(params, run_index) -> RunMetrics`` — so the same
machinery drives full packet simulations (benches), reduced test
fixtures, and analytic toy models.

Provides the paper's three analyses:

- :func:`sweep` — evaluate a parameter grid, n runs each (Figures 2a-2c);
- :func:`select_optimal` — the P_l-optimal setting;
- :func:`leave_one_out` — Figure 3's stability validation ("for each
  workload, we take the 'optimal' parameter settings from one run and
  evaluate its performance on the remaining n-1 runs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..metrics.summary import RunMetrics
from ..transport.cubic import CubicParams, cubic_sweep_grid
from .context import CongestionLevel
from .policy import PolicyTable

Evaluator = Callable[[CubicParams, int], RunMetrics]

#: The paper's Table 2 grid, materialized.
CUBIC_SWEEP_GRID: List[CubicParams] = list(cubic_sweep_grid())


@dataclass
class SweepResult:
    """All runs of one parameter setting under one workload."""

    params: CubicParams
    runs: List[RunMetrics] = field(default_factory=list)

    @property
    def mean_power_l(self) -> float:
        """Mean of the paper's optimization objective across runs."""
        if not self.runs:
            return 0.0
        return sum(run.power_l for run in self.runs) / len(self.runs)

    @property
    def mean_throughput_mbps(self) -> float:
        """Mean throughput across runs."""
        if not self.runs:
            return 0.0
        return sum(run.throughput_mbps for run in self.runs) / len(self.runs)

    @property
    def mean_queueing_delay_ms(self) -> float:
        """Mean queueing delay across runs."""
        if not self.runs:
            return 0.0
        return sum(run.queueing_delay_ms for run in self.runs) / len(self.runs)

    @property
    def mean_loss_rate(self) -> float:
        """Mean bottleneck loss rate across runs."""
        if not self.runs:
            return 0.0
        return sum(run.loss_rate for run in self.runs) / len(self.runs)


def sweep(
    evaluator: Evaluator,
    grid: Optional[Iterable[CubicParams]] = None,
    n_runs: int = 8,
) -> List[SweepResult]:
    """Evaluate every grid point ``n_runs`` times (the paper uses n=8)."""
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    points = list(grid) if grid is not None else list(CUBIC_SWEEP_GRID)
    results = []
    for params in points:
        result = SweepResult(params=params)
        for run_index in range(n_runs):
            result.runs.append(evaluator(params, run_index))
        results.append(result)
    return results


def select_optimal(results: Sequence[SweepResult]) -> SweepResult:
    """The sweep point with the best mean P_l."""
    if not results:
        raise ValueError("select_optimal needs at least one sweep result")
    return max(results, key=lambda r: r.mean_power_l)


@dataclass(frozen=True)
class LeaveOneOutRecord:
    """Figure 3, one held-out run.

    ``chosen_params`` maximized P_l on run ``held_out_run`` alone;
    ``transfer_power_l`` is that setting's mean P_l on the other runs,
    compared against the per-run-optimal and default baselines.
    """

    held_out_run: int
    chosen_params: CubicParams
    transfer_power_l: float
    oracle_power_l: float
    default_power_l: float

    @property
    def gain_over_default(self) -> float:
        """Transfer P_l relative to the default setting (>1 means better)."""
        if self.default_power_l <= 0:
            return float("inf") if self.transfer_power_l > 0 else 1.0
        return self.transfer_power_l / self.default_power_l

    @property
    def fraction_of_oracle(self) -> float:
        """How much of the per-run-optimal gain the transfer retains."""
        if self.oracle_power_l <= 0:
            return 1.0
        return self.transfer_power_l / self.oracle_power_l


def leave_one_out(
    results: Sequence[SweepResult],
    default_params: Optional[CubicParams] = None,
) -> List[LeaveOneOutRecord]:
    """Figure 3's stability analysis over a completed sweep.

    For each run index i: pick the grid point that won on run i, then
    score it on the remaining runs.  Requires every grid point to have the
    same number of runs.
    """
    if not results:
        raise ValueError("leave_one_out needs sweep results")
    n_runs = len(results[0].runs)
    if any(len(r.runs) != n_runs for r in results):
        raise ValueError("all sweep results must have the same number of runs")
    if n_runs < 2:
        raise ValueError("leave_one_out needs at least 2 runs per grid point")

    if default_params is None:
        default_params = CubicParams.default()
    default_result = _find_params(results, default_params)

    records = []
    for held_out in range(n_runs):
        chosen = max(results, key=lambda r: r.runs[held_out].power_l)
        other_indices = [i for i in range(n_runs) if i != held_out]
        transfer = _mean_power_l(chosen, other_indices)
        oracle = max(_mean_power_l(r, other_indices) for r in results)
        default_score = (
            _mean_power_l(default_result, other_indices)
            if default_result is not None
            else 0.0
        )
        records.append(
            LeaveOneOutRecord(
                held_out_run=held_out,
                chosen_params=chosen.params,
                transfer_power_l=transfer,
                oracle_power_l=oracle,
                default_power_l=default_score,
            )
        )
    return records


def _find_params(
    results: Sequence[SweepResult], params: CubicParams
) -> Optional[SweepResult]:
    for result in results:
        if result.params == params:
            return result
    return None


def _mean_power_l(result: SweepResult, indices: Sequence[int]) -> float:
    values = [result.runs[i].power_l for i in indices]
    return sum(values) / len(values)


def build_policy(
    per_level_results: Mapping[CongestionLevel, Sequence[SweepResult]],
) -> PolicyTable:
    """Assemble a :class:`PolicyTable` from per-congestion-level sweeps.

    Levels without sweep data inherit the nearest lower level's winner
    (or the default parameters when nothing at all is available below).
    """
    entries: Dict[CongestionLevel, CubicParams] = {}
    previous = CubicParams.default()
    for level in sorted(CongestionLevel, key=lambda lvl: lvl.rank):
        results = per_level_results.get(level)
        if results:
            previous = select_optimal(results).params
        entries[level] = previous
    return PolicyTable(entries)

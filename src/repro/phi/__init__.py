"""Phi: information sharing and coordination for the "five computers".

The paper's contribution.  Senders of a single large entity share their
network experience through a :class:`ContextServer` (or, as an upper
bound, an :class:`IdealContextOracle`), obtain a congestion-context
snapshot (u, q, n) when starting a connection, and key a
:class:`PolicyTable` of sweep-derived optimal TCP parameters with it.
"""

from .aggregation import (
    Aggregator,
    SecureCongestionAggregation,
    make_shares,
)
from .context import (
    FAIR_SHARE_THRESHOLDS_MBPS,
    QUEUE_DELAY_THRESHOLDS,
    UTILIZATION_THRESHOLDS,
    CongestionContext,
    CongestionLevel,
)
from .channel import (
    BreakerState,
    ChannelConfig,
    ChannelStats,
    CircuitBreaker,
    ControlChannel,
    RpcError,
    RpcResult,
    RpcStatus,
)
from .client import (
    SharingMode,
    phi_cubic_factory,
    phi_remy_factory,
    plain_cubic_factory,
    plain_remy_factory,
)
from .corruption import (
    CONTEXT_CORRUPTION_MODES,
    ByzantineReporter,
    CompositeCorruptor,
    ContextCorruptor,
    CorruptingSource,
    CorruptionLayer,
    make_context_corruptor,
)
from .failover import (
    REPLICA_ERRORS,
    FailoverChannel,
    FailoverConfig,
    FailoverStats,
    ReplicaHealth,
)
from .fallback import (
    TRANSPORT_ERRORS,
    ContextDecision,
    ResilientContextClient,
    ResolvedContext,
    resilient_phi_cubic_factory,
)
from .replication import (
    QuorumUnavailable,
    ReadPolicy,
    ReplicaHandle,
    ReplicatedContextService,
    ReplicationConfig,
)
from .guard import (
    GUARD_REASONS,
    ContextGuard,
    GuardConfig,
    GuardVerdict,
)
from .trust import (
    LOSS_RATE_THRESHOLDS,
    TrustConfig,
    TrustTracker,
    observed_level,
    observed_level_from_stats,
)
from .deployment import (
    DeploymentMode,
    SenderAssignment,
    deployment_factories,
    split_stats,
)
from .optimizer import (
    CUBIC_SWEEP_GRID,
    LeaveOneOutRecord,
    SweepResult,
    build_policy,
    leave_one_out,
    select_optimal,
    sweep,
)
from .policy import REFERENCE_POLICY, PolicyDecision, PolicyTable
from .server import (
    ConnectionReport,
    ContextServer,
    IdealContextOracle,
    RobustAggregationConfig,
    report_invalid_reason,
)

__all__ = [
    "Aggregator",
    "BreakerState",
    "ByzantineReporter",
    "CONTEXT_CORRUPTION_MODES",
    "CUBIC_SWEEP_GRID",
    "ChannelConfig",
    "ChannelStats",
    "CircuitBreaker",
    "CompositeCorruptor",
    "ContextCorruptor",
    "ContextDecision",
    "ContextGuard",
    "ControlChannel",
    "CorruptingSource",
    "CorruptionLayer",
    "FailoverChannel",
    "FailoverConfig",
    "FailoverStats",
    "GUARD_REASONS",
    "GuardConfig",
    "GuardVerdict",
    "QuorumUnavailable",
    "REPLICA_ERRORS",
    "ReadPolicy",
    "ReplicaHandle",
    "ReplicaHealth",
    "ReplicatedContextService",
    "ReplicationConfig",
    "LOSS_RATE_THRESHOLDS",
    "RobustAggregationConfig",
    "TRANSPORT_ERRORS",
    "TrustConfig",
    "TrustTracker",
    "FAIR_SHARE_THRESHOLDS_MBPS",
    "QUEUE_DELAY_THRESHOLDS",
    "ResilientContextClient",
    "ResolvedContext",
    "RpcError",
    "RpcResult",
    "RpcStatus",
    "SecureCongestionAggregation",
    "make_shares",
    "REFERENCE_POLICY",
    "UTILIZATION_THRESHOLDS",
    "CongestionContext",
    "CongestionLevel",
    "ConnectionReport",
    "ContextServer",
    "DeploymentMode",
    "IdealContextOracle",
    "LeaveOneOutRecord",
    "PolicyDecision",
    "PolicyTable",
    "SenderAssignment",
    "SharingMode",
    "SweepResult",
    "build_policy",
    "deployment_factories",
    "leave_one_out",
    "make_context_corruptor",
    "observed_level",
    "observed_level_from_stats",
    "report_invalid_reason",
    "phi_cubic_factory",
    "phi_remy_factory",
    "plain_cubic_factory",
    "plain_remy_factory",
    "resilient_phi_cubic_factory",
    "select_optimal",
    "split_stats",
    "sweep",
]

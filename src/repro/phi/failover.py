"""Client-side failover across a replicated control plane.

A sender reaches each replica through its own
:class:`~repro.phi.channel.ControlChannel` (latency, loss, outages,
retries, breaker — all per replica).  The :class:`FailoverChannel` sits
on top and decides *which* replica to ask:

- **health scoring**: every observed RPC outcome folds into a per-replica
  EWMA score, so replica choice is driven by what the client actually
  experienced, not by any global view;
- **failover**: when an attempt fails (timeout, server down, breaker
  open, or a backend refusal such as
  :class:`~repro.phi.replication.QuorumUnavailable`), the call moves on
  to the next-best replica within the same simulated instant — RPC time
  is accounted, never simulated, exactly like the underlying channel;
- **suspension with jittered backoff**: a failed replica is benched for
  an exponentially growing window scaled by ``1 + U[0, jitter)`` drawn
  from the sim RNG, so a thousand clients whose replica died together do
  not stampede it the instant it heals — and the run stays a pure
  function of its seed;
- **sticky-with-probation reselection**: the client sticks to its
  current replica while it works; a replica coming off suspension must
  answer ``probation_successes`` calls before it can become the sticky
  choice again, so one lucky probe does not yank the whole client back
  to a flapping replica.

The channel exposes the same surfaces as :class:`ControlChannel`
(``call_lookup``/``call_report`` returning :class:`RpcResult`, raising
``lookup``/``report``/``report_stats``), so a
:class:`~repro.phi.fallback.ResilientContextClient` wraps it unchanged
— replication slots into the PR 1 degradation stack instead of beside
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..simnet.engine import Simulator
from ..telemetry import session as _telemetry_session
from ..transport.base import ConnectionStats
from .channel import ControlChannel, RpcError, RpcResult, RpcStatus
from .context import CongestionContext
from .server import ConnectionReport

#: Failures that mark one *replica attempt* as failed rather than
#: crashing the whole call: transport-shaped exceptions raised by the
#: backend through the channel (e.g. QuorumUnavailable, which subclasses
#: ConnectionError).  Mirrors ``fallback.TRANSPORT_ERRORS``.
REPLICA_ERRORS = (RpcError, ConnectionError, TimeoutError, OSError)

#: Telemetry status label for attempts failed by a backend exception
#: (the channel-level statuses come from RpcStatus values).
BACKEND_ERROR_STATUS = "backend_error"


@dataclass(frozen=True)
class FailoverConfig:
    """Health, suspension, and stickiness knobs.

    Attributes
    ----------
    health_alpha:
        EWMA weight of the latest outcome in a replica's health score
        (1 = healthy, 0 = hopeless).
    suspend_base_s / suspend_multiplier / suspend_max_s:
        A replica's ``k``-th consecutive failure benches it for
        ``min(base * multiplier**(k-1), max)`` seconds (before jitter).
    suspend_jitter:
        Uniform multiplicative jitter on the suspension window:
        scaled by ``1 + U[0, suspend_jitter)``, drawn from the sim RNG
        (required when > 0) so recovery probes decorrelate across
        clients while staying reproducible.
    probation_successes:
        Successful calls a replica coming off suspension must serve
        before it can be reselected as the sticky current replica.
    """

    health_alpha: float = 0.3
    suspend_base_s: float = 0.5
    suspend_multiplier: float = 2.0
    suspend_max_s: float = 10.0
    suspend_jitter: float = 0.5
    probation_successes: int = 2

    def __post_init__(self) -> None:
        if not 0 < self.health_alpha <= 1:
            raise ValueError(f"health_alpha must be in (0, 1]: {self.health_alpha}")
        if self.suspend_base_s < 0 or self.suspend_max_s < 0:
            raise ValueError("suspension bounds must be >= 0")
        if self.suspend_multiplier < 1:
            raise ValueError(
                f"suspend_multiplier must be >= 1: {self.suspend_multiplier}"
            )
        if self.suspend_jitter < 0:
            raise ValueError(
                f"suspend_jitter must be >= 0: {self.suspend_jitter}"
            )
        if self.probation_successes < 0:
            raise ValueError(
                f"probation_successes must be >= 0: {self.probation_successes}"
            )


@dataclass
class ReplicaHealth:
    """One replica's standing, as this client has observed it."""

    score: float = 1.0
    consecutive_failures: int = 0
    suspended_until: float = float("-inf")
    probation_left: int = 0
    successes: int = 0
    failures: int = 0


@dataclass
class FailoverStats:
    """Cumulative accounting across every call on one failover channel."""

    calls: int = 0
    successes: int = 0
    failures: int = 0        # calls where every candidate replica failed
    fast_failures: int = 0   # calls failed instantly: all replicas benched
    attempts: int = 0        # per-replica attempts (not channel retries)
    failovers: int = 0       # calls answered by a non-primary replica
    suspensions: int = 0
    by_replica: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def _replica(self, index: int) -> Dict[str, int]:
        return self.by_replica.setdefault(
            index, {"attempts": 0, "successes": 0, "failures": 0}
        )


class FailoverChannel:
    """Replica selection and failover over per-replica control channels.

    Parameters
    ----------
    sim:
        Simulator (for the clock; suspensions are sim-time windows).
    channels:
        One :class:`ControlChannel` (or anything exposing
        ``call_lookup()`` / ``call_report(report)``) per replica.
    rng:
        Sim-seeded RNG; required when ``config.suspend_jitter > 0``.
    config:
        :class:`FailoverConfig` (defaults apply when omitted).
    preference:
        Optional permutation of replica indices expressing nearness:
        ties in health break toward earlier entries, and the first entry
        is the initial sticky replica.  This is how the service-level
        ``NEAREST`` read policy is realized — the client prefers its
        close replica and only walks down the list on failure.
    """

    def __init__(
        self,
        sim: Simulator,
        channels: Sequence[ControlChannel],
        *,
        rng=None,
        config: Optional[FailoverConfig] = None,
        preference: Optional[Sequence[int]] = None,
    ) -> None:
        if not channels:
            raise ValueError("FailoverChannel needs at least one channel")
        self.sim = sim
        self.channels = list(channels)
        self.config = config or FailoverConfig()
        if rng is None and self.config.suspend_jitter > 0:
            raise ValueError("suspension jitter requires an rng")
        self.rng = rng
        n = len(self.channels)
        if preference is None:
            preference = tuple(range(n))
        if sorted(preference) != list(range(n)):
            raise ValueError(
                f"preference must be a permutation of 0..{n - 1}: {preference}"
            )
        self._pref_rank = {index: rank for rank, index in enumerate(preference)}
        self._health: List[ReplicaHealth] = [ReplicaHealth() for _ in channels]
        self._current = preference[0]
        self.stats = FailoverStats()

    @property
    def n_replicas(self) -> int:
        return len(self.channels)

    @property
    def current_replica(self) -> int:
        """The sticky replica new calls try first (when not benched)."""
        return self._current

    def health(self, index: int) -> ReplicaHealth:
        """This client's observed standing of replica ``index``."""
        return self._health[index]

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def _suspended(self, index: int) -> bool:
        return self.sim.now < self._health[index].suspended_until

    def _try_order(self) -> List[int]:
        """Non-benched replicas, best first.

        Sticky current leads; replicas on probation sort after
        full-standing ones; health score then preference rank settle the
        rest.  Deterministic for a given state, so runs replay exactly.
        """
        order = [i for i in range(self.n_replicas) if not self._suspended(i)]
        order.sort(
            key=lambda i: (
                0 if i == self._current else 1,
                1 if self._health[i].probation_left > 0 else 0,
                -self._health[i].score,
                self._pref_rank[i],
            )
        )
        return order

    # ------------------------------------------------------------------
    # Outcome accounting
    # ------------------------------------------------------------------
    def _record_success(self, index: int) -> None:
        health = self._health[index]
        alpha = self.config.health_alpha
        health.score = (1 - alpha) * health.score + alpha
        health.consecutive_failures = 0
        health.successes += 1
        if health.probation_left > 0:
            health.probation_left -= 1

    def _record_failure(self, index: int) -> None:
        cfg = self.config
        health = self._health[index]
        health.score = (1 - cfg.health_alpha) * health.score
        health.consecutive_failures += 1
        health.failures += 1
        window = min(
            cfg.suspend_max_s,
            cfg.suspend_base_s
            * cfg.suspend_multiplier ** (health.consecutive_failures - 1),
        )
        if cfg.suspend_jitter > 0:
            window *= 1.0 + float(self.rng.uniform(0.0, cfg.suspend_jitter))
        health.suspended_until = self.sim.now + window
        health.probation_left = cfg.probation_successes
        self.stats.suspensions += 1

    # ------------------------------------------------------------------
    # Call machinery
    # ------------------------------------------------------------------
    def _call(self, op: str, report: Optional[ConnectionReport] = None) -> RpcResult:
        self.stats.calls += 1
        tele = _telemetry_session()
        order = self._try_order()
        if not order:
            # Every replica is benched: fail fast, like an open breaker.
            self.stats.fast_failures += 1
            self.stats.failures += 1
            if tele.enabled:
                tele.registry.counter(
                    "phi.replica_rpc_calls", replica="none", status="all_suspended"
                ).inc()
            rec = tele.flightrec
            if rec.enabled:
                rec.phi("all_suspended", self.sim.now, op)
            return RpcResult(RpcStatus.CIRCUIT_OPEN, 0, 0.0)
        primary = order[0]
        attempts = 0
        elapsed = 0.0
        last: Optional[RpcResult] = None
        for index in order:
            channel = self.channels[index]
            try:
                if op == "lookup":
                    result = channel.call_lookup()
                else:
                    result = channel.call_report(report)
                status_label = result.status.value
            except REPLICA_ERRORS:
                # The RPC reached a live server whose backend refused to
                # serve (e.g. quorum loss): a replica failure, not a
                # call crash.  Costs no simulated time.
                result = RpcResult(RpcStatus.SERVER_DOWN, 1, 0.0)
                status_label = BACKEND_ERROR_STATUS
            attempts += result.attempts
            elapsed += result.elapsed_s
            replica_stats = self.stats._replica(index)
            replica_stats["attempts"] += 1
            self.stats.attempts += 1
            if tele.enabled:
                tele.registry.counter(
                    "phi.replica_rpc_calls",
                    replica=str(index),
                    status=status_label,
                ).inc()
            if result.ok:
                replica_stats["successes"] += 1
                self._record_success(index)
                self.stats.successes += 1
                if index != primary:
                    self.stats.failovers += 1
                    if tele.enabled:
                        tele.registry.counter("phi.failovers").inc()
                    rec = tele.flightrec
                    if rec.enabled:
                        rec.phi(
                            "failover", self.sim.now, op,
                            detail={"primary": primary, "served_by": index},
                        )
                if (
                    index != self._current
                    and self._health[index].probation_left == 0
                ):
                    self._current = index
                return RpcResult(RpcStatus.OK, attempts, elapsed, result.value)
            replica_stats["failures"] += 1
            self._record_failure(index)
            last = result
        self.stats.failures += 1
        return RpcResult(last.status, attempts, elapsed)

    # ------------------------------------------------------------------
    # ControlChannel-compatible surfaces
    # ------------------------------------------------------------------
    def call_lookup(self) -> RpcResult:
        """Connection-start lookup, failing over across replicas."""
        return self._call("lookup")

    def call_report(self, report: ConnectionReport) -> RpcResult:
        """Connection-end report, failing over across replicas."""
        return self._call("report", report)

    def lookup(self) -> CongestionContext:
        """ContextSource-compatible lookup; raises :class:`RpcError`."""
        result = self.call_lookup()
        if not result.ok:
            raise RpcError(result)
        return result.value

    def report(self, report: ConnectionReport) -> None:
        """ContextSource-compatible report; raises :class:`RpcError`."""
        result = self.call_report(report)
        if not result.ok:
            raise RpcError(result)

    def report_stats(self, stats: ConnectionStats) -> None:
        """Convenience parity with :class:`ContextServer`."""
        self.report(ConnectionReport.from_stats(stats, self.sim.now))

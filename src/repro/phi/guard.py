"""Context guardrails: validate shared state before acting on it.

The congestion context is the one input every coordinated sender trusts
blindly — which makes a wrong context a *correlated* failure: one bad
snapshot mistunes the whole population at once.  The
:class:`ContextGuard` is the client-side checkpoint between a lookup and
the policy table.  It never repairs a snapshot; it only answers "may the
policy act on this?", and a rejection sends the caller down the same
degradation path an unreachable server would
(:class:`~repro.phi.fallback.ResilientContextClient` then serves the
stale cache or stock defaults).

Checks are layered cheapest-first:

1. **finite** — every field must be a finite number.  Deserialized
   payloads bypass ``CongestionContext.__post_init__`` (see
   :func:`~repro.phi.corruption.raw_context`), so NaN/inf must be caught
   here, not assumed away.
2. **range** — utilization in [0, 1], non-negative delays and counts,
   bounded by configured ceilings.
3. **future timestamp** — a snapshot from the future is a clock lie.
4. **rate of change** — ``u`` and ``q`` may move only as fast as the
   configured slew allows relative to the *last accepted* snapshot; a
   teleporting estimate is rejected even when each endpoint is in range.
5. **cross-field consistency** — ``fair_share ~= capacity / n`` when the
   guard knows the capacity; a snapshot whose fields contradict each
   other is rejected whole.

Every rejection is counted by reason (``phi.guard_rejections{reason}``
when telemetry is live) so a poisoned run is attributable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..telemetry import session as _telemetry_session
from .context import CongestionContext

#: Rejection reasons, in check order.
REASON_NON_FINITE = "non_finite"
REASON_OUT_OF_RANGE = "out_of_range"
REASON_FUTURE_TIMESTAMP = "future_timestamp"
REASON_RATE_OF_CHANGE = "rate_of_change"
REASON_INCONSISTENT = "inconsistent_fair_share"

GUARD_REASONS = (
    REASON_NON_FINITE,
    REASON_OUT_OF_RANGE,
    REASON_FUTURE_TIMESTAMP,
    REASON_RATE_OF_CHANGE,
    REASON_INCONSISTENT,
)


@dataclass(frozen=True)
class GuardConfig:
    """Envelope the guard holds contexts to.

    Attributes
    ----------
    max_queue_delay_s:
        Ceiling on a believable queueing delay.  Far above anything a
        sane buffer produces (the Table-3 bottleneck's BDP is ~0.15 s);
        a snapshot beyond it is an encoding error, not weather.
    max_competing_senders:
        Ceiling on a believable sender count.
    max_future_skew_s:
        How far ahead of the local clock a timestamp may claim to be.
    utilization_step / utilization_slew_per_s:
        Allowed ``|Δu|`` between consecutive *accepted* snapshots:
        ``step + slew * Δt``.  The step floor absorbs honest estimator
        jumps (a big report landing in the window); the slew term lets
        any change through given enough elapsed time.
    queue_delay_step_s / queue_delay_slew_per_s:
        Same envelope for ``q``.
    capacity_mbps:
        The bottleneck capacity the deployment knows (a provider knows
        its provisioned egress).  Enables the fair-share consistency
        check; ``None`` disables it.
    fair_share_rel_tol:
        Relative tolerance for ``fair_share ~= capacity / n``.
    """

    max_queue_delay_s: float = 30.0
    max_competing_senders: float = 1e6
    max_future_skew_s: float = 1.0
    utilization_step: float = 0.5
    utilization_slew_per_s: float = 0.5
    queue_delay_step_s: float = 0.2
    queue_delay_slew_per_s: float = 0.5
    capacity_mbps: Optional[float] = None
    fair_share_rel_tol: float = 0.25

    def __post_init__(self) -> None:
        if self.max_queue_delay_s <= 0:
            raise ValueError(
                f"max_queue_delay_s must be positive: {self.max_queue_delay_s}"
            )
        if self.max_competing_senders <= 0:
            raise ValueError(
                f"max_competing_senders must be positive: {self.max_competing_senders}"
            )
        if self.max_future_skew_s < 0:
            raise ValueError(
                f"max_future_skew_s must be >= 0: {self.max_future_skew_s}"
            )
        for name in (
            "utilization_step",
            "utilization_slew_per_s",
            "queue_delay_step_s",
            "queue_delay_slew_per_s",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0: {getattr(self, name)}")
        if self.capacity_mbps is not None and self.capacity_mbps <= 0:
            raise ValueError(f"capacity_mbps must be positive: {self.capacity_mbps}")
        if self.fair_share_rel_tol <= 0:
            raise ValueError(
                f"fair_share_rel_tol must be positive: {self.fair_share_rel_tol}"
            )


@dataclass(frozen=True)
class GuardVerdict:
    """One validation outcome: accepted, or rejected with a reason."""

    accepted: bool
    reason: Optional[str] = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.accepted


_ACCEPT = GuardVerdict(True)


class ContextGuard:
    """Stateful validator between lookups and the policy table.

    Parameters
    ----------
    config:
        The :class:`GuardConfig` envelope (defaults are permissive enough
        for honest estimator dynamics).
    now:
        Optional clock callable enabling the future-timestamp check; the
        rate-of-change check uses the snapshots' own timestamps and needs
        no clock.
    """

    def __init__(
        self,
        config: Optional[GuardConfig] = None,
        *,
        now: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config or GuardConfig()
        self._now = now
        self._last_accepted: Optional[CongestionContext] = None
        self.accepted_count = 0
        self.rejections: Dict[str, int] = {}

    @property
    def last_accepted(self) -> Optional[CongestionContext]:
        """The previous snapshot the guard let through (rate baseline)."""
        return self._last_accepted

    @property
    def rejected_count(self) -> int:
        return sum(self.rejections.values())

    def validate(self, context: CongestionContext) -> GuardVerdict:
        """Check one snapshot; accepted snapshots become the rate baseline."""
        verdict = self._check(context)
        if verdict.accepted:
            self.accepted_count += 1
            self._last_accepted = context
        else:
            reason = verdict.reason or "unknown"
            self.rejections[reason] = self.rejections.get(reason, 0) + 1
            tele = _telemetry_session()
            if tele.enabled:
                tele.registry.counter("phi.guard_rejections", reason=reason).inc()
        return verdict

    # ------------------------------------------------------------------
    # Checks (cheapest first; first failure wins)
    # ------------------------------------------------------------------
    def _check(self, context: CongestionContext) -> GuardVerdict:
        cfg = self.config
        fields = [
            ("utilization", context.utilization),
            ("queue_delay_s", context.queue_delay_s),
            ("competing_senders", context.competing_senders),
            ("timestamp", context.timestamp),
        ]
        if context.fair_share_mbps is not None:
            fields.append(("fair_share_mbps", context.fair_share_mbps))

        for name, value in fields:
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                return GuardVerdict(
                    False, REASON_NON_FINITE, f"{name}={value!r}"
                )

        if not 0.0 <= context.utilization <= 1.0:
            return GuardVerdict(
                False, REASON_OUT_OF_RANGE, f"utilization={context.utilization!r}"
            )
        if not 0.0 <= context.queue_delay_s <= cfg.max_queue_delay_s:
            return GuardVerdict(
                False, REASON_OUT_OF_RANGE, f"queue_delay_s={context.queue_delay_s!r}"
            )
        if not 0.0 <= context.competing_senders <= cfg.max_competing_senders:
            return GuardVerdict(
                False,
                REASON_OUT_OF_RANGE,
                f"competing_senders={context.competing_senders!r}",
            )
        if context.fair_share_mbps is not None and context.fair_share_mbps < 0.0:
            return GuardVerdict(
                False,
                REASON_OUT_OF_RANGE,
                f"fair_share_mbps={context.fair_share_mbps!r}",
            )

        if self._now is not None:
            skew = context.timestamp - self._now()
            if skew > cfg.max_future_skew_s:
                return GuardVerdict(
                    False, REASON_FUTURE_TIMESTAMP, f"skew={skew:.3f}s"
                )

        last = self._last_accepted
        if last is not None:
            dt = max(0.0, context.timestamp - last.timestamp)
            allowed_u = cfg.utilization_step + cfg.utilization_slew_per_s * dt
            if abs(context.utilization - last.utilization) > allowed_u:
                return GuardVerdict(
                    False,
                    REASON_RATE_OF_CHANGE,
                    f"|du|={abs(context.utilization - last.utilization):.3f}"
                    f">{allowed_u:.3f}",
                )
            allowed_q = cfg.queue_delay_step_s + cfg.queue_delay_slew_per_s * dt
            if abs(context.queue_delay_s - last.queue_delay_s) > allowed_q:
                return GuardVerdict(
                    False,
                    REASON_RATE_OF_CHANGE,
                    f"|dq|={abs(context.queue_delay_s - last.queue_delay_s):.3f}"
                    f">{allowed_q:.3f}",
                )

        if cfg.capacity_mbps is not None and context.fair_share_mbps is not None:
            expected = cfg.capacity_mbps / max(1.0, context.competing_senders)
            tolerance = cfg.fair_share_rel_tol * expected
            if abs(context.fair_share_mbps - expected) > tolerance:
                return GuardVerdict(
                    False,
                    REASON_INCONSISTENT,
                    f"fair_share={context.fair_share_mbps:.3f}"
                    f" expected~{expected:.3f}",
                )

        return _ACCEPT

    def rejection_counts(self) -> Dict[str, int]:
        """Plain-dict rejection mix keyed by reason."""
        return dict(self.rejections)

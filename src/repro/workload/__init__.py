"""Traffic models: exponential on/off sources and persistent bulk flows."""

from .longrunning import (
    PERSISTENT_FLOW_BYTES,
    LongRunningFlow,
    launch_long_running_flows,
)
from .onoff import OnOffConfig, OnOffSource, SenderFactory
from .poisson import PoissonConfig, PoissonFlowGenerator

__all__ = [
    "PERSISTENT_FLOW_BYTES",
    "LongRunningFlow",
    "OnOffConfig",
    "OnOffSource",
    "PoissonConfig",
    "PoissonFlowGenerator",
    "SenderFactory",
    "launch_long_running_flows",
]

"""Long-running (persistent) bulk senders, for the Figure 2c setting:
"100 long-running connections, with the bottleneck link being 99%
[utilized]".

Each :class:`LongRunningFlow` opens one connection with an effectively
infinite amount of data and runs until the experiment ends, at which
point it is aborted and its partial statistics collected.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..simnet.engine import Simulator
from ..simnet.monitor import ActiveFlowTracker
from ..simnet.node import Host
from ..simnet.packet import FlowIdAllocator, FlowSpec
from ..transport.base import ConnectionStats, TcpSender
from ..transport.sink import TcpSink
from .onoff import SenderFactory

#: "Infinite" flow size for persistent connections (1 GB is far more than
#: any experiment horizon can drain at the paper's link speeds).
PERSISTENT_FLOW_BYTES = 1_000_000_000


class LongRunningFlow:
    """One persistent bulk-transfer connection."""

    def __init__(
        self,
        sim: Simulator,
        sender_host: Host,
        receiver_host: Host,
        sender_factory: SenderFactory,
        flow_ids: FlowIdAllocator,
        *,
        start_time: float = 0.0,
        flow_tracker: Optional[ActiveFlowTracker] = None,
    ) -> None:
        self.sim = sim
        self.flow_tracker = flow_tracker
        flow_id = flow_ids.next_id()
        self.spec = FlowSpec(
            flow_id=flow_id,
            src=sender_host.name,
            src_port=20_000 + flow_id % 40_000,
            dst=receiver_host.name,
            dst_port=443,
        )
        self.sink = TcpSink(sim, receiver_host, self.spec)
        self.sender = sender_factory(
            sim, sender_host, self.spec, PERSISTENT_FLOW_BYTES, self._on_complete
        )
        sim.schedule_at(max(start_time, sim.now), self._start)

    def _start(self) -> None:
        if self.flow_tracker is not None:
            self.flow_tracker.flow_started(self.spec.flow_id, self.sim.now)
        self.sender.start()

    def _on_complete(self, sender: TcpSender) -> None:
        # Persistent flows are not expected to drain within an experiment;
        # if one does, it simply stops (stats are kept either way).
        if self.flow_tracker is not None:
            self.flow_tracker.flow_finished(self.spec.flow_id, self.sim.now)

    def finish(self) -> ConnectionStats:
        """Abort (if still running) and return the accumulated stats."""
        if not self.sender.finished:
            self.sender.abort()
            if self.flow_tracker is not None:
                self.flow_tracker.flow_finished(self.spec.flow_id, self.sim.now)
        self.sink.close()
        return self.sender.stats


def launch_long_running_flows(
    sim: Simulator,
    pairs: List[tuple],
    sender_factory: SenderFactory,
    flow_ids: FlowIdAllocator,
    rng: np.random.Generator,
    *,
    start_spread_s: float = 1.0,
    flow_tracker: Optional[ActiveFlowTracker] = None,
) -> List[LongRunningFlow]:
    """Start one persistent flow per (sender_host, receiver_host) pair.

    Start times are spread uniformly over ``start_spread_s`` to avoid a
    synchronized slow-start stampede at t=0.
    """
    flows = []
    for sender_host, receiver_host in pairs:
        start = float(rng.uniform(0.0, max(1e-9, start_spread_s)))
        flows.append(
            LongRunningFlow(
                sim,
                sender_host,
                receiver_host,
                sender_factory,
                flow_ids,
                start_time=start,
                flow_tracker=flow_tracker,
            )
        )
    return flows

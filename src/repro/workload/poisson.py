"""Open-loop Poisson flow arrivals.

The paper's workload is closed-loop (each sender alternates on/off); an
open-loop model — flows arriving as a Poisson process with heavy-tailed
sizes, independent of completions — is the standard alternative for
dialing in an exact offered load, and is used by the extension benches
to sweep load precisely:

    offered_load = arrival_rate * mean_flow_bytes * 8 / capacity
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..simnet.engine import Simulator
from ..simnet.monitor import ActiveFlowTracker
from ..simnet.packet import MSS_BYTES, FlowIdAllocator, FlowSpec
from ..transport.base import ConnectionStats, TcpSender
from ..transport.sink import TcpSink
from .onoff import SenderFactory


@dataclass(frozen=True)
class PoissonConfig:
    """Arrival process parameters."""

    arrival_rate_per_s: float
    mean_flow_bytes: float
    min_flow_bytes: int = MSS_BYTES

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s <= 0:
            raise ValueError(
                f"arrival rate must be positive: {self.arrival_rate_per_s}"
            )
        if self.mean_flow_bytes <= 0:
            raise ValueError(f"mean flow bytes must be positive: {self.mean_flow_bytes}")

    def offered_load(self, capacity_bps: float) -> float:
        """Offered load as a fraction of ``capacity_bps``."""
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive: {capacity_bps}")
        return self.arrival_rate_per_s * self.mean_flow_bytes * 8.0 / capacity_bps

    @classmethod
    def for_load(
        cls,
        load: float,
        capacity_bps: float,
        mean_flow_bytes: float = 500_000.0,
    ) -> "PoissonConfig":
        """Configuration that offers ``load`` (fraction) of the capacity."""
        if not 0 < load:
            raise ValueError(f"load must be positive: {load}")
        rate = load * capacity_bps / (mean_flow_bytes * 8.0)
        return cls(arrival_rate_per_s=rate, mean_flow_bytes=mean_flow_bytes)


class PoissonFlowGenerator:
    """Launches flows Poisson-style over a pool of host pairs.

    Each arriving flow picks the next host pair round-robin (so traffic
    spreads across the dumbbell's senders) and runs concurrently with
    whatever is already in flight — unlike :class:`OnOffSource`, arrivals
    never wait for completions.
    """

    def __init__(
        self,
        sim: Simulator,
        pairs: Sequence[tuple],
        sender_factory: SenderFactory,
        flow_ids: FlowIdAllocator,
        rng: np.random.Generator,
        config: PoissonConfig,
        *,
        flow_tracker: Optional[ActiveFlowTracker] = None,
        max_concurrent: int = 5_000,
    ) -> None:
        if not pairs:
            raise ValueError("at least one host pair is required")
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1: {max_concurrent}")
        self.sim = sim
        self.pairs = list(pairs)
        self.sender_factory = sender_factory
        self.flow_ids = flow_ids
        self.rng = rng
        self.config = config
        self.flow_tracker = flow_tracker
        self.max_concurrent = max_concurrent

        self.completed: List[ConnectionStats] = []
        self.launched = 0
        self.rejected = 0
        self._active: dict = {}
        self._next_pair = 0
        self._stopped = False

    def start(self) -> None:
        """Schedule the first arrival."""
        self.sim.schedule(self._draw_interarrival(), self._arrival)

    def stop(self) -> None:
        """Stop arrivals and abort in-flight flows."""
        self._stopped = True
        for flow_id, (sender, sink) in list(self._active.items()):
            if not sender.finished:
                sender.abort()
            sink.close()
            if self.flow_tracker is not None:
                self.flow_tracker.flow_finished(flow_id, self.sim.now)
        self._active.clear()

    def _draw_interarrival(self) -> float:
        return float(self.rng.exponential(1.0 / self.config.arrival_rate_per_s))

    def _draw_size(self) -> int:
        size = self.rng.exponential(self.config.mean_flow_bytes)
        return max(self.config.min_flow_bytes, int(size))

    def _arrival(self) -> None:
        if self._stopped:
            return
        self.sim.schedule(self._draw_interarrival(), self._arrival)
        if len(self._active) >= self.max_concurrent:
            self.rejected += 1
            return
        sender_host, receiver_host = self.pairs[self._next_pair]
        self._next_pair = (self._next_pair + 1) % len(self.pairs)

        flow_id = self.flow_ids.next_id()
        self.launched += 1
        spec = FlowSpec(
            flow_id=flow_id,
            src=sender_host.name,
            src_port=50_000 + flow_id % 15_000,
            dst=receiver_host.name,
            dst_port=443,
        )
        sink = TcpSink(self.sim, receiver_host, spec)
        sender = self.sender_factory(
            self.sim, sender_host, spec, self._draw_size(), self._flow_done
        )
        self._active[flow_id] = (sender, sink)
        if self.flow_tracker is not None:
            self.flow_tracker.flow_started(flow_id, self.sim.now)
        sender.start()

    def _flow_done(self, sender: TcpSender) -> None:
        self.completed.append(sender.stats)
        entry = self._active.pop(sender.spec.flow_id, None)
        if entry is not None:
            entry[1].close()
        if self.flow_tracker is not None:
            self.flow_tracker.flow_finished(sender.spec.flow_id, self.sim.now)

    @property
    def concurrent_flows(self) -> int:
        """Flows currently in flight."""
        return len(self._active)

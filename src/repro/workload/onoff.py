"""On/off workload sources (Section 2.2).

"Each sender launches fresh connections sequentially ('on' periods)
separated by idle 'off' periods, where the amount of data transferred
during 'on' periods and the duration of 'off' periods are picked from
separate exponential distributions."

An :class:`OnOffSource` drives one sender/receiver host pair through that
cycle.  The congestion-control flavour is injected through a
``sender_factory`` so the same workload can run Cubic (any parameters),
NewReno, Remy, or Phi-wrapped variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol

import numpy as np

from ..simnet.engine import Simulator
from ..simnet.monitor import ActiveFlowTracker
from ..simnet.node import Host
from ..simnet.packet import MSS_BYTES, FlowIdAllocator, FlowSpec
from ..transport.base import ConnectionStats, TcpSender
from ..transport.sink import TcpSink


class SenderFactory(Protocol):
    """Builds a transport agent for one connection."""

    def __call__(
        self,
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        flow_size_bytes: int,
        on_complete: Callable[[TcpSender], None],
    ) -> TcpSender:  # pragma: no cover - protocol
        ...


@dataclass
class OnOffConfig:
    """Workload parameters for one on/off source.

    Defaults match the paper's Figure 2a/2b setting: mean connection
    length 500 KB, mean off time 2 s.
    """

    mean_on_bytes: float = 500_000.0
    mean_off_s: float = 2.0
    min_flow_bytes: int = MSS_BYTES
    start_jitter_s: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_on_bytes <= 0:
            raise ValueError(f"mean_on_bytes must be positive: {self.mean_on_bytes}")
        if self.mean_off_s < 0:
            raise ValueError(f"mean_off_s must be >= 0: {self.mean_off_s}")


class OnOffSource:
    """Sequential exponential on/off connection generator for one host pair."""

    def __init__(
        self,
        sim: Simulator,
        sender_host: Host,
        receiver_host: Host,
        sender_factory: SenderFactory,
        flow_ids: FlowIdAllocator,
        rng: np.random.Generator,
        config: Optional[OnOffConfig] = None,
        *,
        flow_tracker: Optional[ActiveFlowTracker] = None,
        src_port_base: int = 10_000,
    ) -> None:
        self.sim = sim
        self.sender_host = sender_host
        self.receiver_host = receiver_host
        self.sender_factory = sender_factory
        self.flow_ids = flow_ids
        self.rng = rng
        self.config = config if config is not None else OnOffConfig()
        self.flow_tracker = flow_tracker
        self.src_port_base = src_port_base

        self.completed: List[ConnectionStats] = []
        self.connections_launched = 0
        self._active_sender: Optional[TcpSender] = None
        self._active_sink: Optional[TcpSink] = None
        self._stopped = False

    def start(self) -> None:
        """Schedule the first connection after a uniform start jitter."""
        jitter = float(self.rng.uniform(0.0, max(1e-9, self.config.start_jitter_s)))
        self.sim.schedule(jitter, self._launch_connection)

    def stop(self) -> None:
        """Stop launching new connections; abort the active one if any."""
        self._stopped = True
        if self._active_sender is not None and not self._active_sender.finished:
            self._active_sender.abort()
            self._teardown_active(completed=False)

    def _draw_flow_size(self) -> int:
        size = self.rng.exponential(self.config.mean_on_bytes)
        return max(self.config.min_flow_bytes, int(size))

    def _draw_off_time(self) -> float:
        if self.config.mean_off_s <= 0:
            return 0.0
        return float(self.rng.exponential(self.config.mean_off_s))

    def _launch_connection(self) -> None:
        if self._stopped:
            return
        flow_id = self.flow_ids.next_id()
        self.connections_launched += 1
        spec = FlowSpec(
            flow_id=flow_id,
            src=self.sender_host.name,
            src_port=self.src_port_base + (self.connections_launched % 50_000),
            dst=self.receiver_host.name,
            dst_port=443,
        )
        flow_size = self._draw_flow_size()
        self._active_sink = TcpSink(self.sim, self.receiver_host, spec)
        self._active_sender = self.sender_factory(
            self.sim, self.sender_host, spec, flow_size, self._on_connection_done
        )
        if self.flow_tracker is not None:
            self.flow_tracker.flow_started(flow_id, self.sim.now)
        self._active_sender.start()

    def _on_connection_done(self, sender: TcpSender) -> None:
        self.completed.append(sender.stats)
        self._teardown_active(completed=True)
        if self._stopped:
            return
        self.sim.schedule(self._draw_off_time(), self._launch_connection)

    def _teardown_active(self, completed: bool) -> None:
        if self._active_sender is not None and self.flow_tracker is not None:
            self.flow_tracker.flow_finished(
                self._active_sender.spec.flow_id, self.sim.now
            )
        if self._active_sink is not None:
            self._active_sink.close()
        self._active_sender = None
        self._active_sink = None

    @property
    def active(self) -> bool:
        """Whether a connection is currently in flight."""
        return self._active_sender is not None and not self._active_sender.finished

    def all_stats(self, include_active: bool = False) -> List[ConnectionStats]:
        """Completed connections' stats; optionally include the active one."""
        stats = list(self.completed)
        if include_active and self._active_sender is not None:
            stats.append(self._active_sender.stats)
        return stats

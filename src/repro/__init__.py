"""Phi — a reproduction of "Rethinking Networking for 'Five Computers'"
(Renganathan, Padmanabhan & Uttama Nambi, HotNets-XVII, 2018).

In a world where a handful of cloud-scale entities originate most
Internet traffic, Phi has their senders share network state through a
context server and coordinate congestion control, diagnosis, and
prediction.  This package contains:

- :mod:`repro.simnet` — the discrete-event packet simulator substrate;
- :mod:`repro.transport` — TCP Cubic / NewReno / RemyCC agents;
- :mod:`repro.workload` — the paper's on/off and persistent workloads;
- :mod:`repro.metrics` — the power objectives (P, P_l, log P);
- :mod:`repro.remy` — learned congestion control (tables and trainer);
- :mod:`repro.phi` — the contribution: context server, policies, clients;
- :mod:`repro.ipfix` — the Section 2.1 sharing-opportunity pipeline;
- :mod:`repro.diagnosis` — Figure 5's unreachability detection;
- :mod:`repro.prediction` — Section 3.5 performance prediction;
- :mod:`repro.prioritization` — Section 3.3 ensemble prioritization;
- :mod:`repro.adaptation` — Section 3.2 informed adaptation;
- :mod:`repro.experiments` — the scenario harness behind every figure.

Quickstart::

    from repro.experiments import TABLE3_REMY, run_cubic_fixed, run_phi_cubic
    from repro.phi import REFERENCE_POLICY, SharingMode
    from repro.transport import CubicParams

    base = run_cubic_fixed(CubicParams.default(), TABLE3_REMY, seed=0)
    phi = run_phi_cubic(REFERENCE_POLICY, TABLE3_REMY, SharingMode.PRACTICAL)
    print(base.metrics.power_l, phi.metrics.power_l)
"""

from .experiments import (
    run_cubic_fixed,
    run_incremental_deployment,
    run_onoff_scenario,
    run_phi_cubic,
    run_table3,
)
from .metrics import RunMetrics, log_power, power, power_with_loss
from .phi import (
    REFERENCE_POLICY,
    CongestionContext,
    CongestionLevel,
    ContextServer,
    IdealContextOracle,
    PolicyTable,
    SharingMode,
)
from .remy import WhiskerTable
from .remy.trainer import RemyTrainer
from .simnet import DumbbellConfig, DumbbellTopology, Simulator
from .transport import CubicParams, CubicSender, RemySender, TcpSender, TcpSink

__version__ = "1.0.0"

__all__ = [
    "REFERENCE_POLICY",
    "CongestionContext",
    "CongestionLevel",
    "ContextServer",
    "CubicParams",
    "CubicSender",
    "DumbbellConfig",
    "DumbbellTopology",
    "IdealContextOracle",
    "PolicyTable",
    "RemySender",
    "RemyTrainer",
    "RunMetrics",
    "SharingMode",
    "Simulator",
    "TcpSender",
    "TcpSink",
    "WhiskerTable",
    "log_power",
    "power",
    "power_with_loss",
    "run_cubic_fixed",
    "run_incremental_deployment",
    "run_onoff_scenario",
    "run_phi_cubic",
    "run_table3",
    "__version__",
]

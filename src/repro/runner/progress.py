"""Progress reporting for long sweeps.

The runner calls a reporter after every completed point with a
:class:`SweepProgress` snapshot; :class:`ConsoleProgress` renders it as a
single self-overwriting status line, and tests plug in plain callables.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional, TextIO


@dataclass
class SweepProgress:
    """A snapshot of how far the sweep has gotten.

    ``completed`` counts points that are *settled* — served from cache,
    restored from a checkpoint, freshly computed, or quarantined — so it
    reaches ``total`` even on a sweep with poisoned points.  The
    remaining counters break that total down: ``cached`` (cache hits),
    ``checkpointed`` (journal restores on ``--resume``), ``recomputed``
    (actually evaluated this run), ``retries`` (extra attempts the
    supervisor made), and ``quarantined`` (points given up on).
    """

    total: int
    completed: int
    cached: int
    started_at: float
    checkpointed: int = 0
    recomputed: int = 0
    retries: int = 0
    quarantined: int = 0

    @property
    def cache_hits(self) -> int:
        """Alias for ``cached`` matching the CLI/outcome vocabulary."""
        return self.cached

    @property
    def fraction(self) -> float:
        if self.total <= 0:
            return 1.0
        return self.completed / self.total

    @property
    def elapsed_s(self) -> float:
        return max(0.0, time.perf_counter() - self.started_at)

    @property
    def points_per_second(self) -> float:
        elapsed = self.elapsed_s
        if elapsed <= 0:
            return 0.0
        return self.completed / elapsed

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated seconds to completion (None before any throughput)."""
        rate = self.points_per_second
        if rate <= 0:
            return None
        return (self.total - self.completed) / rate


ProgressReporter = Callable[[SweepProgress], None]


class ConsoleProgress:
    """Writes ``[done/total] rate eta`` to a stream, rate-limited."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.5,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._last_emit = 0.0

    def __call__(self, progress: SweepProgress) -> None:
        now = time.perf_counter()
        finished = progress.completed >= progress.total
        if not finished and now - self._last_emit < self.min_interval_s:
            return
        self._last_emit = now
        eta = progress.eta_s
        eta_text = "--" if eta is None else f"{eta:.0f}s"
        extras = ""
        if progress.checkpointed:
            extras += f" resumed={progress.checkpointed}"
        if progress.retries:
            extras += f" retries={progress.retries}"
        if progress.quarantined:
            extras += f" quarantined={progress.quarantined}"
        self.stream.write(
            f"\r[{progress.completed}/{progress.total}] "
            f"{progress.points_per_second:.1f} pts/s "
            f"cached={progress.cached}{extras} eta={eta_text}"
        )
        if finished:
            self.stream.write("\n")
        self.stream.flush()

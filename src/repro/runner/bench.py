"""Benchmark trajectory files and the regression gate over them.

Each benchmark appends one entry to a JSON trajectory file
(``BENCH_*.json`` by convention) so the repo accumulates a wall-clock
history across commits: serial vs parallel timings, events per second,
speedup, and the hardware it ran on.

Entries that declare a ``gate`` block — ``{"metric": ..., "value": ...,
"higher_is_better": ...}`` — participate in the ``repro bench gate``
regression check: the newest entry's gated metric is compared against
the median of the prior entries' and the gate fails when it regresses
by more than the budget.  Machine-independent ratios (overhead factor,
speedup) make the best gate metrics; raw wall seconds gate poorly
across hardware.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .core import SweepOutcome


def machine_fingerprint() -> Dict[str, Any]:
    """The hardware/runtime facts a timing is meaningless without."""
    try:
        usable_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        usable_cpus = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count() or 1,
        "usable_cpus": usable_cpus,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def bench_entry(
    label: str,
    *,
    serial: Optional[SweepOutcome] = None,
    parallel: Optional[SweepOutcome] = None,
    extra: Optional[Dict[str, Any]] = None,
    gate: Optional[Tuple[str, float, bool]] = None,
) -> Dict[str, Any]:
    """Build one trajectory entry from sweep outcomes.

    ``gate=(metric_name, value, higher_is_better)`` declares the metric
    the ``repro bench gate`` regression check compares across the
    trajectory.
    """
    entry: Dict[str, Any] = {
        "label": label,
        "timestamp": time.time(),
        "machine": machine_fingerprint(),
    }
    if gate is not None:
        metric, value, higher_is_better = gate
        entry["gate"] = {
            "metric": metric,
            "value": float(value),
            "higher_is_better": bool(higher_is_better),
        }
    if serial is not None:
        entry["serial"] = {
            "wall_seconds": serial.wall_seconds,
            "points": len(serial.points),
            "events": serial.total_events,
            "events_per_second": serial.events_per_second,
            "cache_hits": serial.cache_hits,
        }
    if parallel is not None:
        entry["parallel"] = {
            "wall_seconds": parallel.wall_seconds,
            "points": len(parallel.points),
            "events": parallel.total_events,
            "events_per_second": parallel.events_per_second,
            "workers": parallel.workers,
            "cache_hits": parallel.cache_hits,
        }
    if serial is not None and parallel is not None and parallel.wall_seconds > 0:
        entry["speedup"] = serial.wall_seconds / parallel.wall_seconds
    if extra:
        entry.update(extra)
    return entry


def append_bench_entry(path: str, entry: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Append ``entry`` to the trajectory file at ``path``; returns it all.

    The file holds a JSON list; a missing or corrupt file starts fresh
    rather than failing the benchmark that is trying to record history.
    """
    trajectory: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        if isinstance(existing, list):
            trajectory = existing
    except (FileNotFoundError, json.JSONDecodeError):
        pass
    trajectory.append(entry)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        # Strict JSON: a NaN timing would silently poison the gate's
        # median; fail the write instead.
        json.dump(trajectory, handle, indent=2, allow_nan=False)
        handle.write("\n")
    os.replace(tmp_path, path)
    return trajectory


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------

#: Fallback metric paths probed (in order) for legacy entries without a
#: ``gate`` block, as ``(dotted path, higher_is_better)``.
_LEGACY_GATE_METRICS: Tuple[Tuple[str, bool], ...] = (
    ("speedup", True),
    ("parallel.events_per_second", True),
    ("serial.events_per_second", True),
)


def _dig(entry: Dict[str, Any], dotted: str) -> Optional[float]:
    node: Any = entry
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def _gate_metric(entry: Dict[str, Any]) -> Optional[Tuple[str, float, bool]]:
    """``(metric, value, higher_is_better)`` for one entry, or None."""
    gate = entry.get("gate")
    if isinstance(gate, dict):
        value = gate.get("value")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return (
                str(gate.get("metric", "gate")),
                float(value),
                bool(gate.get("higher_is_better", True)),
            )
    for dotted, higher in _LEGACY_GATE_METRICS:
        value = _dig(entry, dotted)
        if value is not None:
            return (dotted, value, higher)
    return None


@dataclass(frozen=True)
class GateResult:
    """Verdict of the regression gate over one trajectory file."""

    path: str
    ok: bool
    reason: str
    metric: Optional[str] = None
    newest: Optional[float] = None
    baseline: Optional[float] = None
    #: Fractional change of newest vs baseline, signed so positive is a
    #: regression (slower / worse) regardless of metric direction.
    regression: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "ok": self.ok,
            "reason": self.reason,
            "metric": self.metric,
            "newest": self.newest,
            "baseline": self.baseline,
            "regression": self.regression,
        }


def check_gate(
    path: str,
    trajectory: List[Dict[str, Any]],
    budget_pct: float,
) -> GateResult:
    """Compare the newest entry against the trajectory median.

    The newest entry's gated metric is measured against the median of
    every *prior* entry that reports the same metric (same-label entries
    only, so one file can hold several benchmark series).  Fewer than
    two comparable entries passes with ``insufficient history`` — a
    fresh trajectory must not fail CI.
    """
    if not trajectory:
        return GateResult(path, True, "empty trajectory")
    newest_entry = trajectory[-1]
    newest = _gate_metric(newest_entry)
    if newest is None:
        return GateResult(path, True, "newest entry has no gated metric")
    metric, value, higher_is_better = newest
    label = newest_entry.get("label")
    priors = [
        found[1]
        for entry in trajectory[:-1]
        if entry.get("label") == label
        for found in [_gate_metric(entry)]
        if found is not None and found[0] == metric
    ]
    if not priors:
        return GateResult(
            path, True, "insufficient history (no prior comparable entries)",
            metric=metric, newest=value,
        )
    baseline = statistics.median(priors)
    if baseline == 0:
        return GateResult(
            path, True, "zero baseline", metric=metric,
            newest=value, baseline=baseline,
        )
    if higher_is_better:
        regression = (baseline - value) / abs(baseline)
    else:
        regression = (value - baseline) / abs(baseline)
    ok = regression <= budget_pct / 100.0
    direction = "higher is better" if higher_is_better else "lower is better"
    reason = (
        f"{metric} ({direction}): newest {value:.6g} vs median {baseline:.6g} "
        f"over {len(priors)} prior entr{'y' if len(priors) == 1 else 'ies'} "
        f"-> {'regression' if regression > 0 else 'improvement'} "
        f"{abs(regression) * 100:.2f}% (budget {budget_pct:.2f}%)"
    )
    return GateResult(
        path, ok, reason, metric=metric,
        newest=value, baseline=baseline, regression=regression,
    )


def load_trajectory(path: str) -> List[Dict[str, Any]]:
    """Read one trajectory file (an empty list when missing/corrupt)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        return []
    return data if isinstance(data, list) else []

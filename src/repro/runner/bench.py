"""Benchmark trajectory files.

Each sweep benchmark appends one entry to a JSON trajectory file
(``BENCH_sweep.json`` by convention) so the repo accumulates a
wall-clock history across commits: serial vs parallel timings, events
per second, speedup, and the hardware it ran on.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Dict, List, Optional

from .core import SweepOutcome


def machine_fingerprint() -> Dict[str, Any]:
    """The hardware/runtime facts a timing is meaningless without."""
    try:
        usable_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        usable_cpus = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count() or 1,
        "usable_cpus": usable_cpus,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def bench_entry(
    label: str,
    *,
    serial: Optional[SweepOutcome] = None,
    parallel: Optional[SweepOutcome] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build one trajectory entry from sweep outcomes."""
    entry: Dict[str, Any] = {
        "label": label,
        "timestamp": time.time(),
        "machine": machine_fingerprint(),
    }
    if serial is not None:
        entry["serial"] = {
            "wall_seconds": serial.wall_seconds,
            "points": len(serial.points),
            "events": serial.total_events,
            "events_per_second": serial.events_per_second,
            "cache_hits": serial.cache_hits,
        }
    if parallel is not None:
        entry["parallel"] = {
            "wall_seconds": parallel.wall_seconds,
            "points": len(parallel.points),
            "events": parallel.total_events,
            "events_per_second": parallel.events_per_second,
            "workers": parallel.workers,
            "cache_hits": parallel.cache_hits,
        }
    if serial is not None and parallel is not None and parallel.wall_seconds > 0:
        entry["speedup"] = serial.wall_seconds / parallel.wall_seconds
    if extra:
        entry.update(extra)
    return entry


def append_bench_entry(path: str, entry: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Append ``entry`` to the trajectory file at ``path``; returns it all.

    The file holds a JSON list; a missing or corrupt file starts fresh
    rather than failing the benchmark that is trying to record history.
    """
    trajectory: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        if isinstance(existing, list):
            trajectory = existing
    except (FileNotFoundError, json.JSONDecodeError):
        pass
    trajectory.append(entry)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    os.replace(tmp_path, path)
    return trajectory

"""The multiprocess experiment-sweep engine.

``SweepRunner`` fans a grid of :class:`CubicParams` points (each run
``n_runs`` times) out over a worker pool, with per-point result caching
keyed by content hash and a deterministic merge: results come back in
grid × run order no matter which worker finished first, and every
point's randomness derives solely from its own seed (each simulation
builds its own :class:`~repro.simnet.random.RngStreams` from
``base_seed + run_index``), so the parallel sweep is bit-identical to
the serial one.

Workers are plain processes running :func:`evaluate_point`; everything
that crosses the process boundary (tasks in, :class:`PointResult` out)
is a picklable frozen dataclass.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from ..phi.optimizer import SweepResult
from ..transport.cubic import CubicParams
from .cache import MemoryCache
from .hashing import point_key
from .progress import ProgressReporter, SweepProgress
from .records import PointResult, flow_records

if TYPE_CHECKING:  # pragma: no cover - cycle guard: experiments imports us
    from ..experiments.scenarios import ScenarioPreset


@dataclass(frozen=True)
class SweepSpec:
    """What stays fixed across the whole sweep: scenario and duration."""

    preset: "ScenarioPreset"
    duration_s: Optional[float] = None

    @property
    def effective_duration_s(self) -> float:
        return (
            self.duration_s if self.duration_s is not None else self.preset.duration_s
        )


@dataclass(frozen=True)
class SweepPoint:
    """One unit of work: a grid point evaluated under one seed."""

    params: CubicParams
    run_index: int
    seed: int

    def key(self, spec: SweepSpec) -> str:
        return point_key(
            self.params,
            spec.preset.config,
            spec.preset.workload,
            spec.effective_duration_s,
            self.seed,
        )


def evaluate_point(spec: SweepSpec, point: SweepPoint) -> PointResult:
    """Run one grid point under one seed; the worker-side entry point.

    Must stay a module-level function so worker processes can unpickle
    it.  All randomness comes from the simulation's own seeded streams,
    so the result is a pure function of ``(spec, point)``.
    """
    # Imported here, not at module top: repro.experiments imports this
    # module (experiments.sweep drives the runner), so the scenario
    # machinery has to bind lazily to keep the import graph acyclic.
    from ..experiments.scenarios import run_cubic_fixed

    started = time.perf_counter()
    result = run_cubic_fixed(
        point.params, spec.preset, seed=point.seed, duration_s=spec.duration_s
    )
    wall = time.perf_counter() - started
    return PointResult(
        key=point.key(spec),
        params=point.params,
        seed=point.seed,
        run_index=point.run_index,
        metrics=result.metrics,
        flows=flow_records(result.per_sender_stats),
        bottleneck_drop_rate=result.bottleneck_drop_rate,
        mean_utilization=result.mean_utilization,
        duration_s=spec.effective_duration_s,
        events_processed=result.events_processed,
        wall_seconds=wall,
    )


@dataclass
class SweepOutcome:
    """A completed sweep: per-point results in deterministic order."""

    spec: SweepSpec
    points: List[PointResult]
    n_runs: int
    base_seed: int
    wall_seconds: float
    workers: int
    cache_hits: int

    @property
    def total_events(self) -> int:
        return sum(point.events_processed for point in self.points)

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_events / self.wall_seconds

    def to_sweep_results(self) -> List[SweepResult]:
        """Reshape into the optimizer's per-grid-point runs structure.

        Output order matches the grid order the sweep was launched with,
        and each point's runs are in run-index order, so
        :func:`repro.phi.optimizer.select_optimal` and
        :func:`~repro.phi.optimizer.leave_one_out` apply unchanged.
        """
        grouped: Dict[CubicParams, SweepResult] = {}
        ordered: List[SweepResult] = []
        for point in self.points:
            result = grouped.get(point.params)
            if result is None:
                result = SweepResult(params=point.params)
                grouped[point.params] = result
                ordered.append(result)
            result.runs.append(point.metrics)
        return ordered


def _default_workers() -> int:
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork avoids re-importing the package per worker; fall back to the
    # platform default where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class SweepRunner:
    """Sweep a parameter grid through the simulator, in parallel.

    Parameters
    ----------
    preset:
        The scenario every point runs under (topology + workload).
    duration_s:
        Override of the preset's simulated duration (None keeps it).
    n_workers:
        Worker processes; defaults to the usable CPU count.  ``1``
        evaluates inline without a pool.
    cache:
        A cache backend (``MemoryCache`` by default; pass a
        :class:`~repro.runner.cache.DiskCache` to persist across runs, or
        ``NullCache`` to disable).
    progress:
        Optional callable receiving :class:`SweepProgress` snapshots.
    """

    def __init__(
        self,
        preset: ScenarioPreset,
        *,
        duration_s: Optional[float] = None,
        n_workers: Optional[int] = None,
        cache=None,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        self.spec = SweepSpec(preset=preset, duration_s=duration_s)
        self.n_workers = n_workers if n_workers is not None else _default_workers()
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        self.cache = cache if cache is not None else MemoryCache()
        self.progress = progress

    def tasks(
        self,
        grid: Sequence[CubicParams],
        n_runs: int,
        base_seed: int,
    ) -> List[SweepPoint]:
        """The work list in deterministic (grid × run) order.

        Seeds follow the serial evaluator's convention: run ``i`` of every
        grid point shares ``base_seed + i`` so leave-one-out comparisons
        see identical workloads across parameter settings.
        """
        if n_runs < 1:
            raise ValueError(f"n_runs must be >= 1, got {n_runs}")
        return [
            SweepPoint(params=params, run_index=run, seed=base_seed + run)
            for params in grid
            for run in range(n_runs)
        ]

    def run(
        self,
        grid: Iterable[CubicParams],
        n_runs: int = 1,
        base_seed: int = 0,
        parallel: bool = True,
    ) -> SweepOutcome:
        """Evaluate the whole grid; returns results in launch order."""
        grid = list(grid)
        tasks = self.tasks(grid, n_runs, base_seed)
        started = time.perf_counter()

        results: List[Optional[PointResult]] = [None] * len(tasks)
        pending: List[Tuple[int, SweepPoint]] = []
        cache_hits = 0
        for index, task in enumerate(tasks):
            cached = self.cache.get(task.key(self.spec))
            if cached is not None:
                results[index] = cached
                cache_hits += 1
            else:
                pending.append((index, task))

        progress_state = SweepProgress(
            total=len(tasks),
            completed=cache_hits,
            cached=cache_hits,
            started_at=started,
        )
        self._report(progress_state)

        use_pool = parallel and self.n_workers > 1 and len(pending) > 1
        if use_pool:
            self._run_pool(pending, results, progress_state)
        else:
            for index, task in pending:
                result = evaluate_point(self.spec, task)
                self.cache.put(result)
                results[index] = result
                progress_state.completed += 1
                self._report(progress_state)

        wall = time.perf_counter() - started
        merged = [result for result in results if result is not None]
        if len(merged) != len(tasks):  # pragma: no cover - defensive
            raise RuntimeError("sweep lost results during merge")
        return SweepOutcome(
            spec=self.spec,
            points=merged,
            n_runs=n_runs,
            base_seed=base_seed,
            wall_seconds=wall,
            workers=self.n_workers if use_pool else 1,
            cache_hits=cache_hits,
        )

    def run_serial(
        self,
        grid: Iterable[CubicParams],
        n_runs: int = 1,
        base_seed: int = 0,
    ) -> SweepOutcome:
        """The single-process baseline (same code path, no pool)."""
        return self.run(grid, n_runs=n_runs, base_seed=base_seed, parallel=False)

    def _run_pool(
        self,
        pending: Sequence[Tuple[int, SweepPoint]],
        results: List[Optional[PointResult]],
        progress_state: SweepProgress,
    ) -> None:
        workers = min(self.n_workers, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            futures = {
                pool.submit(evaluate_point, self.spec, task): index
                for index, task in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    result = future.result()
                    self.cache.put(result)
                    results[futures[future]] = result
                    progress_state.completed += 1
                    self._report(progress_state)

    def _report(self, progress_state: SweepProgress) -> None:
        if self.progress is not None:
            self.progress(progress_state)

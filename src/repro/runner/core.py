"""The multiprocess experiment-sweep engine.

``SweepRunner`` fans a grid of :class:`CubicParams` points (each run
``n_runs`` times) out over a worker pool, with per-point result caching
keyed by content hash and a deterministic merge: results come back in
grid × run order no matter which worker finished first, and every
point's randomness derives solely from its own seed (each simulation
builds its own :class:`~repro.simnet.random.RngStreams` from
``base_seed + run_index``), so the parallel sweep is bit-identical to
the serial one.

Workers are plain processes running :func:`evaluate_point`; everything
that crosses the process boundary (tasks in, :class:`PointResult` out)
is a picklable frozen dataclass.

Execution is supervised (see :mod:`repro.runner.resilience`): worker
crashes and hung points are retried with budgeted backoff, repeatedly
failing points are quarantined instead of aborting the sweep, and an
unrecoverable pool degrades to in-process serial execution.  Completed
points can be journaled to a crash-safe checkpoint
(:mod:`repro.runner.checkpoint`) so an interrupted sweep resumes where
it died.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .. import telemetry as _telemetry
from ..phi.optimizer import SweepResult
from ..simnet.engine import WatchdogConfig
from ..telemetry.registry import LATENCY_BUCKETS_S, merge_snapshots
from ..transport.cubic import CubicParams
from .cache import MemoryCache
from .checkpoint import SweepJournal
from .faultinject import ENV_VAR as _FAULT_ENV_VAR
from .hashing import point_key
from .progress import ProgressReporter, SweepProgress
from .records import PointResult, flow_records
from .resilience import (
    ExecutionReport,
    PointFailure,
    QuarantinedPoint,
    ResilienceConfig,
    SweepSupervisor,
)

if TYPE_CHECKING:  # pragma: no cover - cycle guard: experiments imports us
    from ..experiments.scenarios import ScenarioPreset


@dataclass(frozen=True)
class SweepSpec:
    """What stays fixed across the whole sweep: scenario and duration.

    ``watchdog`` optionally bounds every point's simulation (max events
    / max wall seconds); it can abort a runaway run but never alters the
    trajectory of one that finishes, so it is deliberately *excluded*
    from cache keys.  ``collect_telemetry`` likewise: workers then run
    each point under a private telemetry session and ship the metrics
    snapshot back on the result, which observes the simulation without
    perturbing it.

    ``flightrec_dir`` arms the flight recorder in every worker: a point
    that fails (crash, watchdog trip, invariant violation) dumps its
    rings to ``<flightrec_dir>/flightrec-<point_key>.jsonl`` before the
    exception propagates — the dump exists even when the supervisor
    later quarantines the point and the worker's memory is gone.
    ``profile`` runs every point with per-callback run-loop profiling
    and ships the profile back as a result sidecar.  All three are
    observability knobs, excluded from cache keys.

    ``fault`` injects a data-plane fault into every point:
    ``("outage", start_s, duration_s)`` takes the bottleneck link down
    for that window.  Unlike the knobs above it *changes trajectories*,
    so it is part of the cache key whenever set (and absent from the
    hash when ``None``, preserving historical keys).
    """

    preset: "ScenarioPreset"
    duration_s: Optional[float] = None
    watchdog: Optional[WatchdogConfig] = None
    collect_telemetry: bool = False
    flightrec_dir: Optional[str] = None
    profile: bool = False
    fault: Optional[Tuple[str, float, float]] = None

    @property
    def effective_duration_s(self) -> float:
        return (
            self.duration_s if self.duration_s is not None else self.preset.duration_s
        )


@dataclass(frozen=True)
class SweepPoint:
    """One unit of work: a grid point evaluated under one seed."""

    params: CubicParams
    run_index: int
    seed: int

    def key(self, spec: SweepSpec) -> str:
        return point_key(
            self.params,
            spec.preset.config,
            spec.preset.workload,
            spec.effective_duration_s,
            self.seed,
            fault=list(spec.fault) if spec.fault is not None else None,
        )


def _fault_hook(fault: Optional[Tuple[str, float, float]]):
    """Materialize a :class:`SweepSpec` fault spec as a scenario hook."""
    if fault is None:
        return None
    kind, start_s, duration_s = fault
    if kind != "outage":
        raise ValueError(f"unknown sweep fault kind: {kind!r}")

    def hook(env):
        from ..simnet.faults import LinkOutage

        return [
            LinkOutage(
                env.sim, env.topology.bottleneck,
                start_s=float(start_s), duration_s=float(duration_s),
            )
        ]

    return hook


def evaluate_point(spec: SweepSpec, point: SweepPoint) -> PointResult:
    """Run one grid point under one seed; the worker-side entry point.

    Must stay a module-level function so worker processes can unpickle
    it.  All randomness comes from the simulation's own seeded streams,
    so the result is a pure function of ``(spec, point)``.
    """
    # Imported here, not at module top: repro.experiments imports this
    # module (experiments.sweep drives the runner), so the scenario
    # machinery has to bind lazily to keep the import graph acyclic.
    from .. import flightrec as _flightrec
    from ..experiments.scenarios import run_cubic_fixed

    if _FAULT_ENV_VAR in os.environ:  # test-only fault injection hook
        from .faultinject import maybe_inject_fault

        maybe_inject_fault(point)

    key = point.key(spec)
    started = time.perf_counter()
    snapshot: Optional[Dict[str, Any]] = None
    with ExitStack() as stack:
        if spec.flightrec_dir is not None:
            # Armed recorder: any exception unwinding this scope —
            # watchdog trip, invariant violation, injected crash —
            # leaves a post-mortem dump next to the sweep journal.
            stack.enter_context(
                _flightrec.capture(
                    os.path.join(spec.flightrec_dir, f"flightrec-{key}.jsonl")
                )
            )
        tele = None
        if spec.collect_telemetry:
            # A private session per point: worker processes don't share
            # memory with the parent, so metrics travel by value on the
            # result and are merged deterministically at the by-index
            # merge.  (The ambient flight recorder is inherited.)
            tele = stack.enter_context(_telemetry.use())
        result = run_cubic_fixed(
            point.params,
            spec.preset,
            seed=point.seed,
            duration_s=spec.duration_s,
            watchdog=spec.watchdog,
            profile=spec.profile,
            fault_hook=_fault_hook(spec.fault),
        )
        if tele is not None:
            snapshot = tele.registry.snapshot()
    wall = time.perf_counter() - started
    return PointResult(
        key=key,
        params=point.params,
        seed=point.seed,
        run_index=point.run_index,
        metrics=result.metrics,
        flows=flow_records(result.per_sender_stats),
        bottleneck_drop_rate=result.bottleneck_drop_rate,
        mean_utilization=result.mean_utilization,
        duration_s=spec.effective_duration_s,
        events_processed=result.events_processed,
        wall_seconds=wall,
        telemetry=snapshot,
        profile=result.profile,
    )


@dataclass
class SweepOutcome:
    """A completed sweep: per-point results in deterministic order.

    ``points`` holds the surviving results; quarantined points (if any)
    are reported in ``quarantined`` with their failure histories and are
    absent from ``points``.
    """

    spec: SweepSpec
    points: List[PointResult]
    n_runs: int
    base_seed: int
    wall_seconds: float
    workers: int
    cache_hits: int
    checkpoint_reused: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    serial_fallback: bool = False
    quarantined: List[QuarantinedPoint] = field(default_factory=list)
    #: Where each surviving point's result came from, keyed by point key:
    #: "computed" | "cached" | "resumed".
    provenance: Dict[str, str] = field(default_factory=dict)
    #: Failed attempts keyed by point key (retried-then-survived and
    #: quarantined points alike; quarantined entries also carry theirs).
    failure_history: Dict[str, Tuple[PointFailure, ...]] = field(default_factory=dict)
    #: Deterministic merge of the per-worker metric snapshots (None when
    #: the sweep ran without telemetry collection).
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def total_events(self) -> int:
        return sum(point.events_processed for point in self.points)

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_events / self.wall_seconds

    @property
    def complete(self) -> bool:
        """Whether every scheduled point produced a result."""
        return not self.quarantined

    def to_sweep_results(self) -> List[SweepResult]:
        """Reshape into the optimizer's per-grid-point runs structure.

        Output order matches the grid order the sweep was launched with,
        and each point's runs are in run-index order, so
        :func:`repro.phi.optimizer.select_optimal` and
        :func:`~repro.phi.optimizer.leave_one_out` apply unchanged.
        Quarantined points simply contribute fewer runs.
        """
        grouped: Dict[CubicParams, SweepResult] = {}
        ordered: List[SweepResult] = []
        for point in self.points:
            result = grouped.get(point.params)
            if result is None:
                result = SweepResult(params=point.params)
                grouped[point.params] = result
                ordered.append(result)
            result.runs.append(point.metrics)
        return ordered


def _default_workers() -> int:
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork avoids re-importing the package per worker; fall back to the
    # platform default where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class SweepRunner:
    """Sweep a parameter grid through the simulator, in parallel.

    Parameters
    ----------
    preset:
        The scenario every point runs under (topology + workload).
    duration_s:
        Override of the preset's simulated duration (None keeps it).
    n_workers:
        Worker processes; defaults to the usable CPU count.  ``1``
        evaluates inline without a pool.
    cache:
        A cache backend (``MemoryCache`` by default; pass a
        :class:`~repro.runner.cache.DiskCache` to persist across runs, or
        ``NullCache`` to disable).
    progress:
        Optional callable receiving :class:`SweepProgress` snapshots.
    resilience:
        Supervisor knobs (:class:`~repro.runner.resilience.ResilienceConfig`);
        the default retries crashes/hangs and quarantines repeat
        offenders instead of aborting.
    watchdog:
        Optional per-simulation :class:`~repro.simnet.engine.WatchdogConfig`
        (max events / max wall seconds) installed in every worker run.
    checkpoint_dir:
        Journal completed points under this directory (crash-safe JSONL
        keyed by the sweep's content hash).  ``None`` disables
        checkpointing.
    resume:
        Replay an existing journal before scheduling work, so only
        unfinished points are recomputed.  Without ``resume`` an
        existing journal for the same sweep is truncated.
    journal_fsync:
        fsync the journal per record (durable against power loss); turn
        off to speed up sweeps of very cheap points.
    flightrec_dir:
        Arm the flight recorder in every worker, dumping on failure to
        ``flightrec-<point_key>.jsonl`` under this directory.  Defaults
        to ``checkpoint_dir`` (dumps land next to the sweep journal);
        pass ``""`` to disable recording for a checkpointed sweep.
    profile:
        Run every point with per-callback run-loop profiling; profiles
        ride back on each computed :class:`PointResult`.
    fault:
        Inject a data-plane fault into every point, e.g.
        ``("outage", 5.0, 2.0)`` (bottleneck down for 2 s starting at
        sim t=5 s).  Part of the cache key — faulted and fault-free
        evaluations never collide.
    """

    def __init__(
        self,
        preset: ScenarioPreset,
        *,
        duration_s: Optional[float] = None,
        n_workers: Optional[int] = None,
        cache=None,
        progress: Optional[ProgressReporter] = None,
        resilience: Optional[ResilienceConfig] = None,
        watchdog: Optional[WatchdogConfig] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        journal_fsync: bool = True,
        flightrec_dir: Optional[str] = None,
        profile: bool = False,
        fault: Optional[Tuple[str, float, float]] = None,
    ) -> None:
        if flightrec_dir is None:
            flightrec_dir = checkpoint_dir
        self.spec = SweepSpec(
            preset=preset,
            duration_s=duration_s,
            watchdog=watchdog,
            flightrec_dir=flightrec_dir or None,
            profile=profile,
            fault=fault,
        )
        self.n_workers = n_workers if n_workers is not None else _default_workers()
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        self.cache = cache if cache is not None else MemoryCache()
        self.progress = progress
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.journal_fsync = journal_fsync

    def tasks(
        self,
        grid: Sequence[CubicParams],
        n_runs: int,
        base_seed: int,
    ) -> List[SweepPoint]:
        """The work list in deterministic (grid × run) order.

        Seeds follow the serial evaluator's convention: run ``i`` of every
        grid point shares ``base_seed + i`` so leave-one-out comparisons
        see identical workloads across parameter settings.
        """
        if n_runs < 1:
            raise ValueError(f"n_runs must be >= 1, got {n_runs}")
        return [
            SweepPoint(params=params, run_index=run, seed=base_seed + run)
            for params in grid
            for run in range(n_runs)
        ]

    def run(
        self,
        grid: Iterable[CubicParams],
        n_runs: int = 1,
        base_seed: int = 0,
        parallel: bool = True,
    ) -> SweepOutcome:
        """Evaluate the whole grid; returns results in launch order."""
        tele = _telemetry.session()
        if tele.enabled and not self.spec.collect_telemetry:
            # Telemetry is live in this process: have workers collect
            # per-point snapshots too.  Excluded from cache keys, so
            # this cannot invalidate previously-cached results.
            self.spec = replace(self.spec, collect_telemetry=True)
        grid = list(grid)
        tasks = self.tasks(grid, n_runs, base_seed)
        started = time.perf_counter()

        journal: Optional[SweepJournal] = None
        restored: Dict[str, PointResult] = {}
        if self.checkpoint_dir is not None:
            journal = SweepJournal.for_sweep(
                self.checkpoint_dir,
                self.spec,
                grid,
                n_runs,
                base_seed,
                fsync=self.journal_fsync,
            )
            if self.resume:
                restored = journal.load()
                journal.open()
            else:
                journal.reset()

        results: List[Optional[PointResult]] = [None] * len(tasks)
        pending: List[Tuple[int, SweepPoint]] = []
        key_by_index: List[str] = []
        provenance: Dict[str, str] = {}
        cache_hits = 0
        checkpoint_hits = 0
        for index, task in enumerate(tasks):
            key = task.key(self.spec)
            key_by_index.append(key)
            checkpointed = restored.get(key)
            if checkpointed is not None:
                results[index] = checkpointed
                checkpoint_hits += 1
                provenance[key] = "resumed"
                continue
            cached = self.cache.get(key)
            if cached is not None:
                results[index] = cached
                cache_hits += 1
                provenance[key] = "cached"
                if journal is not None:
                    # Journal cache hits too: a resume must not depend on
                    # the cache still existing (or still being trusted).
                    journal.append(cached)
            else:
                pending.append((index, task))

        progress_state = SweepProgress(
            total=len(tasks),
            completed=cache_hits + checkpoint_hits,
            cached=cache_hits,
            checkpointed=checkpoint_hits,
            started_at=started,
        )
        self._report(progress_state)

        supervisor = SweepSupervisor(
            self.spec,
            evaluate_point,
            config=self.resilience,
            n_workers=self.n_workers,
            mp_context=_pool_context(),
        )

        def deliver(index: int, result: PointResult) -> None:
            # Cache entries never carry telemetry snapshots: DiskCache
            # drops them on serialization (to_dict excludes the field),
            # so strip them for MemoryCache too — cached points behave
            # identically whichever backend served them.
            if result.telemetry is None and result.profile is None:
                self.cache.put(result)
            else:
                self.cache.put(replace(result, telemetry=None, profile=None))
            if journal is not None:
                journal.append(result)
            results[index] = result
            provenance[result.key] = "computed"
            if tele.enabled:
                tele.tracer.event(
                    "runner.point_done",
                    sim_time=result.duration_s,
                    index=index,
                    seed=result.seed,
                    wall_s=result.wall_seconds,
                )
            progress_state.completed += 1
            progress_state.recomputed += 1
            sync_supervision()

        def sync_supervision() -> None:
            report = supervisor.report
            progress_state.retries = report.retries
            newly_quarantined = report.quarantined_count - progress_state.quarantined
            if newly_quarantined:
                progress_state.quarantined = report.quarantined_count
                progress_state.completed += newly_quarantined
            self._report(progress_state)

        use_pool = parallel and self.n_workers > 1 and len(pending) > 1
        try:
            if use_pool:
                report = supervisor.execute_pool(pending, deliver, sync_supervision)
            else:
                report = supervisor.execute_serial(pending, deliver, sync_supervision)
        finally:
            if journal is not None:
                journal.close()

        wall = time.perf_counter() - started
        merged = [result for result in results if result is not None]
        if len(merged) + report.quarantined_count != len(tasks):
            # pragma: no cover - defensive
            raise RuntimeError("sweep lost results during merge")

        failure_history = {
            key_by_index[index]: tuple(failures)
            for index, failures in sorted(report.failure_history.items())
        }
        merged_telemetry: Optional[Dict[str, Any]] = None
        if self.spec.collect_telemetry:
            # Index order (not completion order) keeps the merged
            # snapshot bit-identical between serial and parallel runs.
            merged_telemetry = merge_snapshots(
                result.telemetry for result in merged
                if result.telemetry is not None
            )
        if tele.enabled:
            registry = tele.registry
            registry.counter("runner.cache_hits").inc(cache_hits)
            registry.counter("runner.cache_misses").inc(len(pending))
            registry.counter("runner.checkpoint_reused").inc(checkpoint_hits)
            registry.counter("runner.retries").inc(report.retries)
            registry.counter("runner.pool_rebuilds").inc(report.pool_rebuilds)
            wall_histogram = registry.histogram(
                "runner.point_wall_s", LATENCY_BUCKETS_S
            )
            for result in merged:
                wall_histogram.observe(result.wall_seconds)
            tele.tracer.event(
                "runner.sweep_complete",
                points=len(merged),
                wall_s=wall,
                retries=report.retries,
                quarantined=report.quarantined_count,
            )

        return SweepOutcome(
            spec=self.spec,
            points=merged,
            n_runs=n_runs,
            base_seed=base_seed,
            wall_seconds=wall,
            workers=self.n_workers if use_pool else 1,
            cache_hits=cache_hits,
            checkpoint_reused=checkpoint_hits,
            retries=report.retries,
            pool_rebuilds=report.pool_rebuilds,
            serial_fallback=report.serial_fallback,
            quarantined=list(report.quarantined),
            provenance=provenance,
            failure_history=failure_history,
            telemetry=merged_telemetry,
        )

    def run_serial(
        self,
        grid: Iterable[CubicParams],
        n_runs: int = 1,
        base_seed: int = 0,
    ) -> SweepOutcome:
        """The single-process baseline (same code path, no pool)."""
        return self.run(grid, n_runs=n_runs, base_seed=base_seed, parallel=False)

    def _report(self, progress_state: SweepProgress) -> None:
        if self.progress is not None:
            self.progress(progress_state)


__all__ = [
    "ExecutionReport",
    "SweepOutcome",
    "SweepPoint",
    "SweepRunner",
    "SweepSpec",
    "evaluate_point",
]

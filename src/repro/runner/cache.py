"""Per-point result caches for the sweep runner.

A cache maps a content hash (see :mod:`repro.runner.hashing`) to a
:class:`~repro.runner.records.PointResult`.  Because the key covers the
engine signature along with params, topology, workload, duration, and
seed, a hit is always safe to reuse — a re-run of an already-swept grid
costs nothing, and widening a sweep only pays for the new points.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

from .hashing import content_hash
from .records import PointResult


class CacheStats:
    """Hit/miss counters shared by all cache backends."""

    __slots__ = ("hits", "misses", "writes", "corrupt_evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt_evictions = 0


class MemoryCache:
    """In-process dictionary cache (the default)."""

    def __init__(self) -> None:
        self._store: Dict[str, PointResult] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: str) -> Optional[PointResult]:
        result = self._store.get(key)
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return result

    def put(self, result: PointResult) -> None:
        self._store[result.key] = result
        self.stats.writes += 1


class DiskCache:
    """One checksummed JSON file per point under ``directory``.

    Corruption-proof by construction: writes are atomic (temp file +
    ``os.replace``) so a crashed or interrupted sweep never leaves a
    torn entry behind, and every entry embeds a SHA-256 over its
    canonical payload.  ``get`` treats *any* damage — unreadable file,
    invalid JSON, checksum mismatch, schema drift — as a miss, deletes
    the poisoned file so it cannot fail again, and lets the sweep
    recompute the point instead of aborting mid-run.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".json"))

    def _evict_corrupt(self, path: str) -> None:
        self.stats.corrupt_evictions += 1
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - deletion is best-effort
            pass

    def get(self, key: str) -> Optional[PointResult]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
            payload = envelope["result"]
            if envelope["checksum"] != content_hash(payload):
                raise ValueError("checksum mismatch")
            result = PointResult.from_dict(payload)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Truncated write from a killed run, bit rot, stale schema:
            # delete-and-miss so one bad file can't poison every sweep.
            self._evict_corrupt(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, result: PointResult) -> None:
        path = self._path(result.key)
        payload = result.to_dict()
        envelope = {"checksum": content_hash(payload), "result": payload}
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # allow_nan=False: fail loudly at write time rather than
                # persist non-standard Infinity/NaN tokens other JSON
                # parsers reject (see FlowRecord.min_rtt serialization).
                json.dump(envelope, handle, allow_nan=False)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except FileNotFoundError:
                pass
            raise
        self.stats.writes += 1


class NullCache:
    """A cache that remembers nothing (for benchmarking cold paths)."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    def __len__(self) -> int:
        return 0

    def get(self, key: str) -> Optional[PointResult]:
        self.stats.misses += 1
        return None

    def put(self, result: PointResult) -> None:
        pass

"""Per-point result caches for the sweep runner.

A cache maps a content hash (see :mod:`repro.runner.hashing`) to a
:class:`~repro.runner.records.PointResult`.  Because the key covers the
engine signature along with params, topology, workload, duration, and
seed, a hit is always safe to reuse — a re-run of an already-swept grid
costs nothing, and widening a sweep only pays for the new points.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

from .records import PointResult


class CacheStats:
    """Hit/miss counters shared by all cache backends."""

    __slots__ = ("hits", "misses", "writes")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writes = 0


class MemoryCache:
    """In-process dictionary cache (the default)."""

    def __init__(self) -> None:
        self._store: Dict[str, PointResult] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: str) -> Optional[PointResult]:
        result = self._store.get(key)
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return result

    def put(self, result: PointResult) -> None:
        self._store[result.key] = result
        self.stats.writes += 1


class DiskCache:
    """One JSON file per point under ``directory``.

    Writes are atomic (temp file + rename) so a crashed or interrupted
    sweep never leaves a torn cache entry behind.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".json"))

    def get(self, key: str) -> Optional[PointResult]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return PointResult.from_dict(data)

    def put(self, result: PointResult) -> None:
        path = self._path(result.key)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(result.to_dict(), handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except FileNotFoundError:
                pass
            raise
        self.stats.writes += 1


class NullCache:
    """A cache that remembers nothing (for benchmarking cold paths)."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    def __len__(self) -> int:
        return 0

    def get(self, key: str) -> Optional[PointResult]:
        self.stats.misses += 1
        return None

    def put(self, result: PointResult) -> None:
        pass

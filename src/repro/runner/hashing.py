"""Content hashing for sweep-point results.

A point's cache key covers everything that determines its outcome: the
Cubic parameters, the topology, the workload, the simulated duration,
the seed, and an engine signature that is bumped whenever the simulation
semantics change (so stale caches can never leak results from an older
physics).  Keys are hex SHA-256 over a canonical JSON encoding.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from typing import Any, Optional

from ..simnet.topology import DumbbellConfig
from ..transport.cubic import CubicParams
from ..workload.onoff import OnOffConfig

#: Bump on any change that alters simulation trajectories (event ordering,
#: queue accounting, transport behaviour, workload draws ...).
#: v3: LinkMonitor samples on a drift-free epoch + k*period grid, which
#: moves sample times (and hence mean_utilization) at float-ulp scale.
#: v4: Cubic's TCP-friendly window follows the Ha et al. law (epoch
#: window origin, t = elapsed + rtt) and ACKs echoing a legitimate 0.0
#: send time are now RTT-sampled; both change trajectories.
ENGINE_SIGNATURE = "phi-simnet-v4-cubic-wlaw"


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, exact float repr."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _plain(value: Any) -> Any:
    """Reduce configs/dataclasses to canonical JSON-friendly structures."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _plain(v) for k, v in sorted(asdict(value).items())}
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    raise TypeError(f"cannot canonicalize {type(value).__name__} for hashing")


def content_hash(payload: Any) -> str:
    """Hex SHA-256 of the canonical JSON encoding of ``payload``."""
    encoded = canonical_json(_plain(payload)).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def point_key(
    params: CubicParams,
    config: DumbbellConfig,
    workload: Optional[OnOffConfig],
    duration_s: float,
    seed: int,
    engine_signature: str = ENGINE_SIGNATURE,
    fault: Optional[Any] = None,
) -> str:
    """The cache key of one (grid point, run) evaluation.

    ``fault`` is the sweep's injected-fault spec (see
    :class:`~repro.runner.core.SweepSpec`); it alters trajectories, so
    it is hashed when present — and omitted entirely when ``None`` so
    fault-free sweeps keep their historical keys.
    """
    payload = {
        "engine": engine_signature,
        "params": params,
        "topology": config,
        "workload": workload,
        "duration_s": float(duration_s),
        "seed": int(seed),
    }
    if fault is not None:
        payload["fault"] = fault
    return content_hash(payload)

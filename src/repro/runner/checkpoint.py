"""Resumable-sweep checkpoints: an append-only, checksummed journal.

A long parameter sweep that dies — worker crash cascade, SIGKILL, power
loss — should never forfeit the points it already computed.  The runner
therefore journals every completed :class:`~repro.runner.records.PointResult`
to a JSONL file named by the sweep's *content key* (a hash over the
engine signature, scenario, grid, run count, and base seed), and
``--resume`` replays the journal before scheduling any work.

Robustness model:

- **Identification**: the journal file name is the sweep key, so a
  resume can never replay results from a different grid, scenario,
  duration, seed convention, or engine version.  Individual records are
  additionally matched by their own point key, which covers the same
  inputs per point.
- **Torn writes**: each record is one line ``{"checksum", "result"}``
  with a SHA-256 over the canonical JSON of the result.  A record is
  only trusted if it parses, checksums, and round-trips; a torn tail
  line (the one being written when the process died) or any corrupted
  line is skipped, counted, and healed away.
- **Healing**: loading rewrites the journal *atomically* (temp file +
  ``os.replace``) whenever corrupt lines were found, so damage never
  accumulates and the post-load file is exactly the trusted records.
- **Durability**: appends flush per record and ``fsync`` by default, so
  a completed point survives even an immediate hard kill.  Pass
  ``fsync=False`` to trade power-loss durability for speed on sweeps of
  very cheap points (ordinary-crash durability is kept either way).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .hashing import ENGINE_SIGNATURE, content_hash
from .records import PointResult

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from ..transport.cubic import CubicParams
    from .core import SweepSpec


class CheckpointError(Exception):
    """Raised for invalid uses of the checkpoint layer."""


def sweep_key(
    spec: "SweepSpec",
    grid: Sequence["CubicParams"],
    n_runs: int,
    base_seed: int,
    engine_signature: str = ENGINE_SIGNATURE,
) -> str:
    """Content key identifying one exact sweep (grid order included)."""
    return content_hash(
        {
            "engine": engine_signature,
            "topology": spec.preset.config,
            "workload": spec.preset.workload,
            "duration_s": float(spec.effective_duration_s),
            "grid": list(grid),
            "n_runs": int(n_runs),
            "base_seed": int(base_seed),
        }
    )


def _record_line(result: PointResult) -> str:
    payload = result.to_dict()
    checksum = content_hash(payload)
    # allow_nan=False: the journal must stay strict JSON (non-standard
    # Infinity/NaN tokens would break interoperable parsers).
    return json.dumps({"checksum": checksum, "result": payload}, allow_nan=False) + "\n"


def _parse_record(line: str) -> Optional[PointResult]:
    """One trusted PointResult, or None for any kind of damage."""
    try:
        envelope = json.loads(line)
        payload = envelope["result"]
        if envelope["checksum"] != content_hash(payload):
            return None
        return PointResult.from_dict(payload)
    except (ValueError, KeyError, TypeError):
        return None


class SweepJournal:
    """The journal of completed points for one sweep key."""

    def __init__(self, path: str, *, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        self._handle = None
        self.appended = 0
        self.corrupt_dropped = 0

    @classmethod
    def for_sweep(
        cls,
        directory: str,
        spec: "SweepSpec",
        grid: Sequence["CubicParams"],
        n_runs: int,
        base_seed: int,
        *,
        fsync: bool = True,
    ) -> "SweepJournal":
        """The journal for this exact sweep under ``directory``."""
        os.makedirs(directory, exist_ok=True)
        key = sweep_key(spec, grid, n_runs, base_seed)
        return cls(os.path.join(directory, f"{key}.jsonl"), fsync=fsync)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self, heal: bool = True) -> Dict[str, PointResult]:
        """Trusted records by point key; damaged lines are dropped.

        With ``heal`` (the default) a journal containing any damaged
        line is atomically rewritten to just the trusted records, so the
        file on disk is clean after every load.
        """
        if self._handle is not None:
            raise CheckpointError("cannot load an open journal")
        restored: Dict[str, PointResult] = {}
        ordered: List[PointResult] = []
        corrupt = 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    if not line.strip():
                        continue
                    record = _parse_record(line)
                    if record is None:
                        corrupt += 1
                    elif record.key not in restored:
                        restored[record.key] = record
                        ordered.append(record)
        except FileNotFoundError:
            return {}
        self.corrupt_dropped = corrupt
        if corrupt and heal:
            self._rewrite(ordered)
        return restored

    def _rewrite(self, records: List[PointResult]) -> None:
        """Atomic temp-file + rename replacement with trusted records."""
        directory = os.path.dirname(self.path) or "."
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".journal-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(_record_line(record))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except FileNotFoundError:
                pass
            raise

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def open(self) -> "SweepJournal":
        """Open for appending (records survive from prior runs)."""
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self

    def reset(self) -> "SweepJournal":
        """Truncate: a non-resumed sweep starts a fresh journal."""
        self.close()
        self._handle = open(self.path, "w", encoding="utf-8")
        return self

    def append(self, result: PointResult) -> None:
        """Durably journal one completed point."""
        if self._handle is None:
            self.open()
        self._handle.write(_record_line(result))
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.appended += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "CheckpointError",
    "SweepJournal",
    "sweep_key",
]

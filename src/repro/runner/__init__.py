"""repro.runner — the multiprocess experiment-sweep engine.

Fans parameter grids / scenario lists out over a worker pool with
content-hash result caching, progress reporting, and a deterministic
merge that makes parallel sweeps bit-identical to serial ones.
Execution is crash-safe: a supervisor (:mod:`repro.runner.resilience`)
retries or quarantines failing points, and a checkpoint journal
(:mod:`repro.runner.checkpoint`) makes interrupted sweeps resumable.
See DESIGN.md ("Sweep runner", "Failure modes") for the architecture.
"""

from .bench import (
    GateResult,
    append_bench_entry,
    bench_entry,
    check_gate,
    load_trajectory,
    machine_fingerprint,
)
from .cache import CacheStats, DiskCache, MemoryCache, NullCache
from .checkpoint import CheckpointError, SweepJournal, sweep_key
from .core import (
    SweepOutcome,
    SweepPoint,
    SweepRunner,
    SweepSpec,
    evaluate_point,
)
from .hashing import ENGINE_SIGNATURE, canonical_json, content_hash, point_key
from .progress import ConsoleProgress, ProgressReporter, SweepProgress
from .records import FlowRecord, PointResult, flow_records
from .resilience import (
    ExecutionReport,
    PointFailure,
    QuarantinedPoint,
    ResilienceConfig,
    RetryPolicy,
    SweepSupervisor,
)

__all__ = [
    "ENGINE_SIGNATURE",
    "CacheStats",
    "CheckpointError",
    "ConsoleProgress",
    "DiskCache",
    "ExecutionReport",
    "FlowRecord",
    "GateResult",
    "MemoryCache",
    "NullCache",
    "PointFailure",
    "PointResult",
    "ProgressReporter",
    "QuarantinedPoint",
    "ResilienceConfig",
    "RetryPolicy",
    "SweepJournal",
    "SweepOutcome",
    "SweepPoint",
    "SweepProgress",
    "SweepRunner",
    "SweepSpec",
    "SweepSupervisor",
    "append_bench_entry",
    "bench_entry",
    "canonical_json",
    "check_gate",
    "content_hash",
    "evaluate_point",
    "flow_records",
    "load_trajectory",
    "machine_fingerprint",
    "point_key",
    "sweep_key",
]

"""repro.runner — the multiprocess experiment-sweep engine.

Fans parameter grids / scenario lists out over a worker pool with
content-hash result caching, progress reporting, and a deterministic
merge that makes parallel sweeps bit-identical to serial ones.  See
DESIGN.md ("Sweep runner") for the architecture.
"""

from .bench import append_bench_entry, bench_entry, machine_fingerprint
from .cache import CacheStats, DiskCache, MemoryCache, NullCache
from .core import (
    SweepOutcome,
    SweepPoint,
    SweepRunner,
    SweepSpec,
    evaluate_point,
)
from .hashing import ENGINE_SIGNATURE, canonical_json, content_hash, point_key
from .progress import ConsoleProgress, ProgressReporter, SweepProgress
from .records import FlowRecord, PointResult, flow_records

__all__ = [
    "ENGINE_SIGNATURE",
    "CacheStats",
    "ConsoleProgress",
    "DiskCache",
    "FlowRecord",
    "MemoryCache",
    "NullCache",
    "PointResult",
    "ProgressReporter",
    "SweepOutcome",
    "SweepPoint",
    "SweepProgress",
    "SweepRunner",
    "SweepSpec",
    "append_bench_entry",
    "bench_entry",
    "canonical_json",
    "content_hash",
    "evaluate_point",
    "flow_records",
    "machine_fingerprint",
    "point_key",
]

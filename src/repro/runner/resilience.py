"""Fault-tolerant execution for the sweep runner.

PR 3's pool loop trusted its workers: one worker death raised
``BrokenProcessPool`` out of the whole sweep, a stuck simulation hung it
forever, and a point whose evaluation raised took every other point down
with it.  This module puts a supervisor between the runner and the pool:

- **Crash detection** — ``BrokenProcessPool`` (a worker died without
  cleanup) and per-future exceptions are caught per point, never
  propagated sweep-wide.
- **Blame assignment** — when the pool breaks, only points that were
  *observed running* at the breakage are charged an attempt; queued
  points are re-submitted for free.  (The stdlib fails every outstanding
  future on a break, innocent or not.)
- **Timeouts** — an optional per-point wall budget, measured from when
  the point is first observed running.  Overdue points get the pool's
  workers killed (a hung worker cannot be cancelled), are charged a
  timeout, and everything else is requeued for free.
- **Budgeted retries** — failed points retry with exponential backoff
  (the same policy shape as :class:`repro.phi.channel.ChannelConfig`:
  ``min(base * multiplier**k, max)``, capped by a total backoff budget).
- **Quarantine** — a point that exhausts its attempts or budget lands in
  a reported "poisoned" list with its full failure history; the sweep
  completes with the surviving points instead of aborting.
- **Serial fallback** — if the pool breaks repeatedly without making any
  progress, the supervisor degrades to in-process execution for the
  remaining points (same retry/quarantine rules; crash-style faults are
  worker-only by construction).

The supervisor never touches results: successes flow through a
``deliver(index, result)`` callback the runner owns, which preserves the
deterministic by-index merge that makes parallel sweeps bit-identical
to serial ones.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..simnet.engine import SimulationStalled
from ..telemetry import session as _telemetry_session
from .records import PointResult


@dataclass(frozen=True)
class RetryPolicy:
    """Budgeted exponential backoff for failed points.

    Mirrors the backoff shape of
    :class:`repro.phi.channel.ChannelConfig`: retry ``k`` (0-based)
    waits ``min(backoff_base_s * backoff_multiplier**k, backoff_max_s)``,
    and a point whose cumulative backoff would exceed
    ``backoff_budget_s`` is quarantined instead of retried — the sweep's
    analogue of the channel's hard deadline.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2.0
    backoff_budget_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_multiplier < 1:
            raise ValueError(
                f"backoff multiplier must be >= 1: {self.backoff_multiplier}"
            )
        if self.backoff_budget_s < 0:
            raise ValueError(
                f"backoff budget must be >= 0: {self.backoff_budget_s}"
            )

    def backoff_s(self, retry_index: int) -> float:
        """Backoff before retry number ``retry_index`` (0-based)."""
        return min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_multiplier ** retry_index,
        )


@dataclass(frozen=True)
class ResilienceConfig:
    """Supervisor knobs.

    Attributes
    ----------
    retry:
        Per-point retry/backoff policy.
    point_timeout_s:
        Wall budget per running point (None disables the timeout).
    pool_breaks_before_fallback:
        Consecutive pool breakages *without an intervening success*
        tolerated before degrading to in-process serial execution.
    poll_interval_s:
        The supervisor's tick: how often it wakes to stamp newly running
        futures, check timeouts, and resubmit backed-off points.
    """

    retry: RetryPolicy = RetryPolicy()
    point_timeout_s: Optional[float] = None
    pool_breaks_before_fallback: int = 3
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.point_timeout_s is not None and self.point_timeout_s <= 0:
            raise ValueError(
                f"point_timeout_s must be positive: {self.point_timeout_s}"
            )
        if self.pool_breaks_before_fallback < 1:
            raise ValueError(
                "pool_breaks_before_fallback must be >= 1: "
                f"{self.pool_breaks_before_fallback}"
            )
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be positive: {self.poll_interval_s}"
            )


@dataclass(frozen=True)
class PointFailure:
    """One failed attempt at one point."""

    kind: str  # "crash" | "timeout" | "stalled" | "exception"
    message: str
    attempt: int


@dataclass(frozen=True)
class QuarantinedPoint:
    """A point given up on, with its full failure history."""

    index: int
    point: "object"  # SweepPoint; untyped to avoid an import cycle
    attempts: int
    failures: Tuple[PointFailure, ...]

    @property
    def last_failure(self) -> PointFailure:
        return self.failures[-1]

    def describe(self) -> str:
        last = self.last_failure
        return (
            f"point #{self.index} ({self.point.params}, seed={self.point.seed}) "
            f"quarantined after {self.attempts} attempt(s): "
            f"{last.kind}: {last.message}"
        )


@dataclass
class ExecutionReport:
    """What the supervisor did beyond plain successes."""

    retries: int = 0
    failures: int = 0
    crashes: int = 0
    timeouts: int = 0
    stalled: int = 0
    pool_rebuilds: int = 0
    serial_fallback: bool = False
    quarantined: List[QuarantinedPoint] = field(default_factory=list)
    #: Every failed attempt keyed by task index — including points that
    #: later succeeded, which ``quarantined`` alone cannot show.  This is
    #: the per-point retry provenance run manifests report.
    failure_history: Dict[int, List[PointFailure]] = field(default_factory=dict)

    @property
    def quarantined_count(self) -> int:
        return len(self.quarantined)


def _classify(exc: BaseException) -> str:
    if isinstance(exc, SimulationStalled):
        return "stalled"
    return "exception"


class _Slot:
    """Mutable per-point supervision state."""

    __slots__ = (
        "index", "point", "attempts", "backoff_spent",
        "eligible_at", "started_at", "submit_seq", "failures",
    )

    def __init__(self, index: int, point) -> None:
        self.index = index
        self.point = point
        self.attempts = 0
        self.backoff_spent = 0.0
        self.eligible_at = 0.0
        self.started_at: Optional[float] = None
        self.submit_seq = -1
        self.failures: List[PointFailure] = []


Deliver = Callable[[int, PointResult], None]
OnEvent = Callable[[], None]


class SweepSupervisor:
    """Drives pending points to completion or quarantine.

    Parameters
    ----------
    spec:
        The :class:`~repro.runner.core.SweepSpec` handed to every
        evaluation.
    evaluate:
        The worker entry point (module-level, picklable); injected so
        tests can supervise arbitrary functions.
    config:
        A :class:`ResilienceConfig` (defaults are production-safe).
    n_workers:
        Pool width for :meth:`execute_pool`.
    mp_context:
        The multiprocessing context used to build pools.
    """

    def __init__(
        self,
        spec,
        evaluate,
        *,
        config: Optional[ResilienceConfig] = None,
        n_workers: int = 1,
        mp_context=None,
    ) -> None:
        self.spec = spec
        self.evaluate = evaluate
        self.config = config or ResilienceConfig()
        self.n_workers = n_workers
        self.mp_context = mp_context
        self.report = ExecutionReport()

    # ------------------------------------------------------------------
    # Failure bookkeeping (shared by pool and serial paths)
    # ------------------------------------------------------------------
    def _record_failure(
        self,
        slot: _Slot,
        kind: str,
        message: str,
        queue: deque,
        now: float,
        on_event: Optional[OnEvent],
    ) -> None:
        """Charge one failed attempt; requeue with backoff or quarantine."""
        retry = self.config.retry
        slot.attempts += 1
        failure = PointFailure(kind, message, slot.attempts)
        slot.failures.append(failure)
        report = self.report
        report.failures += 1
        report.failure_history.setdefault(slot.index, []).append(failure)
        tele = _telemetry_session()
        if tele.enabled:
            tele.registry.counter("runner.point_failures", kind=kind).inc()
        if kind == "crash":
            report.crashes += 1
        elif kind == "timeout":
            report.timeouts += 1
        elif kind == "stalled":
            report.stalled += 1
        backoff = retry.backoff_s(slot.attempts - 1)
        exhausted = slot.attempts >= retry.max_attempts
        over_budget = slot.backoff_spent + backoff > retry.backoff_budget_s
        if exhausted or over_budget:
            report.quarantined.append(
                QuarantinedPoint(
                    index=slot.index,
                    point=slot.point,
                    attempts=slot.attempts,
                    failures=tuple(slot.failures),
                )
            )
            if tele.enabled:
                tele.registry.counter("runner.quarantined").inc()
            # If a flight recorder is live in *this* process (serial
            # execution or an in-process experiment driving the
            # supervisor), snapshot it at the quarantine decision.
            # Pool workers dump on their own side at the point of
            # failure; a crashed worker's memory is gone by now.
            tele.flightrec.maybe_autodump(
                f"quarantine:{kind}:point{slot.index}"
            )
        else:
            slot.backoff_spent += backoff
            slot.eligible_at = now + backoff
            slot.started_at = None
            queue.append(slot)
            report.retries += 1
        if on_event is not None:
            on_event()

    # ------------------------------------------------------------------
    # Serial execution (the fallback, and the parallel=False path)
    # ------------------------------------------------------------------
    def execute_serial(
        self,
        pending: Sequence[Tuple[int, "object"]],
        deliver: Deliver,
        on_event: Optional[OnEvent] = None,
    ) -> ExecutionReport:
        """Evaluate in-process with the same retry/quarantine rules.

        No preemptive timeout is possible in-process; the simulation
        watchdog (``spec.watchdog``) is the hang defence here.
        """
        queue = deque(_Slot(index, point) for index, point in pending)
        self._drain_serial(queue, deliver, on_event)
        return self.report

    def _drain_serial(
        self,
        queue: deque,
        deliver: Deliver,
        on_event: Optional[OnEvent],
    ) -> None:
        while queue:
            slot = queue.popleft()
            now = time.monotonic()
            if slot.eligible_at > now:
                time.sleep(slot.eligible_at - now)
            try:
                result = self.evaluate(self.spec, slot.point)
            except Exception as exc:
                self._record_failure(
                    slot, _classify(exc), str(exc), queue, time.monotonic(),
                    on_event,
                )
            else:
                deliver(slot.index, result)

    # ------------------------------------------------------------------
    # Pool execution
    # ------------------------------------------------------------------
    def _new_pool(self, width: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max(1, width), mp_context=self.mp_context
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Forcibly stop a pool whose workers may be hung.

        ``shutdown`` alone would join hung workers forever, so the
        worker processes are killed first.  ``_processes`` is stdlib
        internal but stable across supported versions; if absent the
        plain shutdown still applies.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # pragma: no cover - already-dead workers
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def execute_pool(
        self,
        pending: Sequence[Tuple[int, "object"]],
        deliver: Deliver,
        on_event: Optional[OnEvent] = None,
    ) -> ExecutionReport:
        """Run pending points through a supervised worker pool."""
        cfg = self.config
        queue = deque(_Slot(index, point) for index, point in pending)
        inflight: Dict[Future, _Slot] = {}
        pool: Optional[ProcessPoolExecutor] = None
        pool_width = 1
        consecutive_breaks = 0
        submit_seq = 0
        try:
            while queue or inflight:
                if pool is None:
                    pool_width = min(self.n_workers, max(1, len(queue)))
                    pool = self._new_pool(pool_width)
                now = time.monotonic()
                not_yet_eligible: deque = deque()
                while queue:
                    slot = queue.popleft()
                    if slot.eligible_at <= now:
                        slot.submit_seq = submit_seq
                        submit_seq += 1
                        future = pool.submit(self.evaluate, self.spec, slot.point)
                        inflight[future] = slot
                    else:
                        not_yet_eligible.append(slot)
                queue = not_yet_eligible
                if not inflight:
                    # Everything pending is backing off; sleep to the
                    # earliest eligibility instead of busy-waiting.
                    wake = min(slot.eligible_at for slot in queue)
                    time.sleep(max(0.0, min(wake - now, cfg.poll_interval_s)))
                    continue

                done, _ = wait(
                    set(inflight),
                    timeout=cfg.poll_interval_s,
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                # Stamp futures first observed running: the timeout clock
                # and crash-blame both key off this.
                for future, slot in inflight.items():
                    if slot.started_at is None and future.running():
                        slot.started_at = now

                broken = False
                casualties: List[_Slot] = []
                for future in done:
                    slot = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        casualties.append(slot)
                    except Exception as exc:
                        self._record_failure(
                            slot, _classify(exc), str(exc), queue, now, on_event
                        )
                        consecutive_breaks = 0
                    else:
                        deliver(slot.index, result)
                        consecutive_breaks = 0

                if broken:
                    casualties.extend(inflight.values())
                    inflight.clear()
                    self._assign_break_blame(
                        casualties, pool_width, queue, now, on_event
                    )
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    self.report.pool_rebuilds += 1
                    consecutive_breaks += 1
                    if (
                        consecutive_breaks >= cfg.pool_breaks_before_fallback
                        and queue
                    ):
                        self.report.serial_fallback = True
                        self._drain_serial(queue, deliver, on_event)
                        queue = deque()
                    continue

                if cfg.point_timeout_s is not None:
                    overdue = [
                        (future, slot)
                        for future, slot in inflight.items()
                        if slot.started_at is not None
                        and now - slot.started_at > cfg.point_timeout_s
                    ]
                    if overdue:
                        # A hung worker can't be cancelled: kill the pool,
                        # charge the overdue points, requeue the rest free.
                        for future, slot in overdue:
                            inflight.pop(future)
                            self._record_failure(
                                slot,
                                "timeout",
                                f"no result within {cfg.point_timeout_s}s",
                                queue,
                                now,
                                on_event,
                            )
                        for future, slot in list(inflight.items()):
                            slot.started_at = None
                            queue.append(slot)
                        inflight.clear()
                        self._kill_pool(pool)
                        pool = None
                        self.report.pool_rebuilds += 1
                        # A deliberate kill is not pool instability: the
                        # fallback counter only tracks unexplained breaks.
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return self.report

    def _assign_break_blame(
        self,
        casualties: List[_Slot],
        pool_width: int,
        queue: deque,
        now: float,
        on_event: Optional[OnEvent],
    ) -> None:
        """Charge the points plausibly responsible for a pool breakage.

        Suspects are points observed running before the break; queued
        bystanders are resubmitted without being charged an attempt.
        If the crash happened faster than a poll tick ever saw anyone
        running, fall back to the ``pool_width`` oldest submissions:
        workers consume the call queue FIFO, so the executing set is the
        oldest unfinished work — that always includes the crasher, and
        bounds over-blame (a free requeue of everything would loop
        forever on a crash-at-start point).
        """
        suspects = [slot for slot in casualties if slot.started_at is not None]
        if not suspects:
            suspects = sorted(casualties, key=lambda slot: slot.submit_seq)
            suspects = suspects[:pool_width]
        suspect_ids = {id(slot) for slot in suspects}
        for slot in casualties:
            if id(slot) in suspect_ids:
                self._record_failure(
                    slot,
                    "crash",
                    "worker process died (BrokenProcessPool)",
                    queue,
                    now,
                    on_event,
                )
            else:
                slot.started_at = None
                queue.append(slot)


__all__ = [
    "ExecutionReport",
    "PointFailure",
    "QuarantinedPoint",
    "ResilienceConfig",
    "RetryPolicy",
    "SweepSupervisor",
]

"""Test-only fault injection for sweep workers.

The resilience layer (:mod:`repro.runner.resilience`) needs real worker
crashes, hangs, and exceptions to test against — faults that cannot be
produced by mocking because they must cross a process boundary exactly
the way a production failure would.  This module arms such faults inside
:func:`repro.runner.core.evaluate_point` via a single environment
variable, so the spec travels to worker processes for free:

``REPRO_SWEEP_FAULT`` — a JSON object::

    {"mode": "crash" | "raise" | "hang",
     "beta": 0.2,          # optional match filters: only points whose
     "run_index": 0,       # fields equal every provided filter fire
     "seed": 3,
     "once_dir": "/tmp/x", # optional: fire at most once per point,
                           # latched atomically across processes
     "hang_s": 3600.0,     # sleep length for mode=hang
     "exit_code": 13}      # os._exit code for mode=crash

Modes
-----
``crash``
    ``os._exit`` — the worker dies without cleanup, exactly like a
    segfault or OOM kill, driving ``BrokenProcessPool`` in the parent.
    Only fires inside a worker process (never in the in-process serial
    path, which would take the whole interpreter down).
``raise``
    Raises :class:`InjectedFault`, modelling a deterministic per-point
    software error.
``hang``
    Sleeps ``hang_s`` wall seconds, modelling a stuck simulation that
    only a supervisor-side timeout can clear.

Production sweeps never set the variable; the cost when unset is one
``os.environ`` membership test per point.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from .core import SweepPoint

ENV_VAR = "REPRO_SWEEP_FAULT"


class InjectedFault(RuntimeError):
    """The deterministic exception raised by ``mode="raise"``."""


@dataclass(frozen=True)
class FaultSpec:
    """Parsed form of the ``REPRO_SWEEP_FAULT`` JSON."""

    mode: str
    beta: Optional[float] = None
    run_index: Optional[int] = None
    seed: Optional[int] = None
    once_dir: Optional[str] = None
    hang_s: float = 3600.0
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.mode not in ("crash", "raise", "hang"):
            raise ValueError(f"unknown fault mode {self.mode!r}")

    def matches(self, point: "SweepPoint") -> bool:
        """Whether every provided filter equals the point's field."""
        if self.beta is not None and point.params.beta != self.beta:
            return False
        if self.run_index is not None and point.run_index != self.run_index:
            return False
        if self.seed is not None and point.seed != self.seed:
            return False
        return True

    def to_env(self) -> str:
        """The JSON to place in ``REPRO_SWEEP_FAULT`` (tests use this)."""
        payload = {"mode": self.mode, "hang_s": self.hang_s,
                   "exit_code": self.exit_code}
        for key in ("beta", "run_index", "seed", "once_dir"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return json.dumps(payload)


def fault_spec_from_env() -> Optional[FaultSpec]:
    """The active :class:`FaultSpec`, or None when the env var is unset."""
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    return FaultSpec(**json.loads(raw))


def _latch(spec: FaultSpec, point: "SweepPoint") -> bool:
    """Atomically claim the one allowed firing for this point.

    Returns True if this call won the latch (the fault should fire).
    ``O_CREAT | O_EXCL`` is atomic across processes, so retries of the
    same point — possibly on a different worker — observe the latch.
    """
    name = (
        f"fired-{spec.mode}-b{point.params.beta}"
        f"-w{point.params.window_init}-s{point.params.initial_ssthresh}"
        f"-r{point.run_index}-seed{point.seed}"
    )
    try:
        fd = os.open(
            os.path.join(spec.once_dir, name),
            os.O_CREAT | os.O_EXCL | os.O_WRONLY,
        )
    except FileExistsError:
        return False
    os.close(fd)
    return True


def maybe_inject_fault(point: "SweepPoint") -> None:
    """Fire the armed fault if ``point`` matches the active spec."""
    spec = fault_spec_from_env()
    if spec is None or not spec.matches(point):
        return
    if spec.once_dir is not None and not _latch(spec, point):
        return
    if spec.mode == "crash":
        # In-process (serial / fallback) evaluation must survive: a crash
        # fault models a *worker* death, so it only fires in children.
        if multiprocessing.parent_process() is not None:
            os._exit(spec.exit_code)
        return
    if spec.mode == "raise":
        raise InjectedFault(
            f"injected fault for run_index={point.run_index} "
            f"seed={point.seed} beta={point.params.beta}"
        )
    if spec.mode == "hang":
        time.sleep(spec.hang_s)

"""Serializable result records for the sweep runner.

Workers hand results back across process boundaries and into the on-disk
cache, so everything here is a plain frozen dataclass with exact
JSON round-trips: floats serialize via ``repr`` (Python's ``json`` does
this natively) and deserialize to bit-identical values, which is what
lets the determinism tests compare serial and parallel runs with ``==``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..metrics.summary import RunMetrics
from ..transport.base import ConnectionStats
from ..transport.cubic import CubicParams


@dataclass(frozen=True)
class FlowRecord:
    """A per-connection outcome, frozen for hashing and comparison.

    This is :class:`~repro.transport.base.ConnectionStats` with the
    mutable list of RTT samples pinned down as a tuple, so two runs can
    be compared field-for-field (bit-identical floats included).
    """

    flow_id: int
    start_time: float
    end_time: float
    bytes_goodput: int
    bytes_sent: int
    packets_sent: int
    retransmits: int
    timeouts: int
    fast_retransmits: int
    rtt_samples: Tuple[float, ...]
    min_rtt: float
    completed: bool

    @classmethod
    def from_stats(cls, stats: ConnectionStats) -> "FlowRecord":
        """Freeze one connection's stats."""
        return cls(
            flow_id=stats.flow_id,
            start_time=stats.start_time,
            end_time=stats.end_time,
            bytes_goodput=stats.bytes_goodput,
            bytes_sent=stats.bytes_sent,
            packets_sent=stats.packets_sent,
            retransmits=stats.retransmits,
            timeouts=stats.timeouts,
            fast_retransmits=stats.fast_retransmits,
            rtt_samples=tuple(stats.rtt_samples),
            min_rtt=stats.min_rtt,
            completed=stats.completed,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "flow_id": self.flow_id,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "bytes_goodput": self.bytes_goodput,
            "bytes_sent": self.bytes_sent,
            "packets_sent": self.packets_sent,
            "retransmits": self.retransmits,
            "timeouts": self.timeouts,
            "fast_retransmits": self.fast_retransmits,
            "rtt_samples": list(self.rtt_samples),
            # A zero-sample flow has min_rtt = inf, which is not valid
            # JSON (json.dump emits the non-standard ``Infinity``); it
            # round-trips as null instead.
            "min_rtt": self.min_rtt if math.isfinite(self.min_rtt) else None,
            "completed": self.completed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlowRecord":
        return cls(
            flow_id=int(data["flow_id"]),
            start_time=float(data["start_time"]),
            end_time=float(data["end_time"]),
            bytes_goodput=int(data["bytes_goodput"]),
            bytes_sent=int(data["bytes_sent"]),
            packets_sent=int(data["packets_sent"]),
            retransmits=int(data["retransmits"]),
            timeouts=int(data["timeouts"]),
            fast_retransmits=int(data["fast_retransmits"]),
            rtt_samples=tuple(float(x) for x in data["rtt_samples"]),
            min_rtt=math.inf if data["min_rtt"] is None else float(data["min_rtt"]),
            completed=bool(data["completed"]),
        )


@dataclass(frozen=True)
class PointResult:
    """Everything one (grid point, run) evaluation produced.

    ``key`` is the content hash of (params, topology, workload, duration,
    seed, engine version) — see :mod:`repro.runner.hashing` — which makes
    it the cache key and the join key for deterministic merges.
    """

    key: str
    params: CubicParams
    seed: int
    run_index: int
    metrics: RunMetrics
    flows: Tuple[FlowRecord, ...]
    bottleneck_drop_rate: float
    mean_utilization: float
    duration_s: float
    events_processed: int
    wall_seconds: float
    #: Worker-side metrics snapshot (when the sweep collects telemetry).
    #: Observability sidecar, not simulation output: excluded from
    #: equality, from ``to_dict`` (cache/journal), and from
    #: ``identical_to``, so telemetry can never perturb determinism
    #: checks or cached results.
    telemetry: Optional[Dict[str, Any]] = field(default=None, compare=False)
    #: Worker-side run-loop profile (``SimProfile.as_dict()``) when the
    #: sweep runs with profiling.  Same sidecar rules as ``telemetry``.
    profile: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def identical_to(self, other: "PointResult") -> bool:
        """Bit-identical simulation outcome (wall time excluded).

        Wall-clock is the only field allowed to differ between a serial
        and a parallel evaluation of the same point.
        """
        return (
            self.key == other.key
            and self.params == other.params
            and self.seed == other.seed
            and self.run_index == other.run_index
            and self.metrics == other.metrics
            and self.flows == other.flows
            and self.bottleneck_drop_rate == other.bottleneck_drop_rate
            and self.mean_utilization == other.mean_utilization
            and self.events_processed == other.events_processed
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "params": self.params.as_dict(),
            "seed": self.seed,
            "run_index": self.run_index,
            "metrics": {
                "throughput_mbps": self.metrics.throughput_mbps,
                "queueing_delay_ms": self.metrics.queueing_delay_ms,
                "loss_rate": self.metrics.loss_rate,
                "connections": self.metrics.connections,
                "total_bytes": self.metrics.total_bytes,
                "mean_rtt_ms": self.metrics.mean_rtt_ms,
                "mean_utilization": self.metrics.mean_utilization,
            },
            "flows": [flow.to_dict() for flow in self.flows],
            "bottleneck_drop_rate": self.bottleneck_drop_rate,
            "mean_utilization": self.mean_utilization,
            "duration_s": self.duration_s,
            "events_processed": self.events_processed,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PointResult":
        metrics = data["metrics"]
        return cls(
            key=str(data["key"]),
            params=CubicParams(**data["params"]),
            seed=int(data["seed"]),
            run_index=int(data["run_index"]),
            metrics=RunMetrics(
                throughput_mbps=float(metrics["throughput_mbps"]),
                queueing_delay_ms=float(metrics["queueing_delay_ms"]),
                loss_rate=float(metrics["loss_rate"]),
                connections=int(metrics["connections"]),
                total_bytes=int(metrics["total_bytes"]),
                mean_rtt_ms=float(metrics["mean_rtt_ms"]),
                mean_utilization=float(metrics["mean_utilization"]),
            ),
            flows=tuple(FlowRecord.from_dict(f) for f in data["flows"]),
            bottleneck_drop_rate=float(data["bottleneck_drop_rate"]),
            mean_utilization=float(data["mean_utilization"]),
            duration_s=float(data["duration_s"]),
            events_processed=int(data["events_processed"]),
            wall_seconds=float(data["wall_seconds"]),
        )


def flow_records(per_sender_stats: List[List[ConnectionStats]]) -> Tuple[FlowRecord, ...]:
    """Flatten a scenario's per-sender stats into frozen flow records."""
    return tuple(
        FlowRecord.from_stats(stats)
        for sender in per_sender_stats
        for stats in sender
    )

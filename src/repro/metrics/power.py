"""Network power metrics.

The paper's objective: "we start with the network power metric,
P = r/d, where r is the throughput or data rate, and d is the delay, and
extend it to also incorporate the packet loss rate, l, yielding the new
metric P_l = r(1-l)/d.  We use P_l as the metric to optimize in the case
of TCP Cubic and log(P) in the case of Remy."

Units: throughput in Mbit/s and delay in milliseconds by convention, so
typical values land in a readable range; all comparisons in this
repository use consistent units so the scale is immaterial.
"""

from __future__ import annotations

import math

#: Delay floor to keep P finite when queueing delay is ~0 (1 microsecond
#: expressed in ms).
MIN_DELAY_MS = 1e-3


def power(throughput_mbps: float, delay_ms: float) -> float:
    """Kleinrock network power P = r / d."""
    # NaN compares false against everything, so a bare ``< 0`` guard lets
    # power(nan, d) through and poisons every downstream P_l aggregate;
    # require finite inputs explicitly.
    if not math.isfinite(throughput_mbps) or throughput_mbps < 0:
        raise ValueError(f"throughput must be finite and >= 0, got {throughput_mbps}")
    if not math.isfinite(delay_ms) or delay_ms < 0:
        raise ValueError(f"delay must be finite and >= 0, got {delay_ms}")
    return throughput_mbps / max(delay_ms, MIN_DELAY_MS)


def power_with_loss(throughput_mbps: float, delay_ms: float, loss_rate: float) -> float:
    """The paper's loss-extended power, P_l = r (1 - l) / d."""
    if not math.isfinite(loss_rate) or not 0.0 <= loss_rate <= 1.0:
        raise ValueError(f"loss_rate must be finite and in [0, 1], got {loss_rate}")
    return power(throughput_mbps, delay_ms) * (1.0 - loss_rate)


def log_power(throughput_mbps: float, delay_ms: float) -> float:
    """Remy's objective, log(P) = log(r / d).

    Returns -inf when throughput is zero (a flow that moved no data).
    """
    value = power(throughput_mbps, delay_ms)
    if value <= 0:
        return -math.inf
    return math.log(value)

"""Objectives and aggregation: network power metrics and run summaries."""

from .power import MIN_DELAY_MS, log_power, power, power_with_loss
from .summary import (
    CrossRunSummary,
    RunMetrics,
    finite_mean,
    summarize_connections,
    summarize_runs,
)

__all__ = [
    "MIN_DELAY_MS",
    "CrossRunSummary",
    "RunMetrics",
    "finite_mean",
    "log_power",
    "power",
    "power_with_loss",
    "summarize_connections",
    "summarize_runs",
]

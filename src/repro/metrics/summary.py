"""Run-level metric aggregation.

Turns a pile of per-connection :class:`ConnectionStats` (plus optional
bottleneck ground truth) into the three quantities the paper plots —
throughput, queueing delay, packet loss rate — and the derived power
objectives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import median
from typing import Iterable, Optional, Sequence

from ..transport.base import ConnectionStats
from .power import log_power, power, power_with_loss


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate outcome of one simulation run.

    ``throughput_mbps`` follows the paper's definition ("throughput = bits
    transferred / ontime"): total goodput bits over total connection
    on-time.  ``queueing_delay_ms`` is RTT inflation over the minimum RTT,
    the paper's ``q`` proxy.  ``loss_rate`` is the fraction of data
    packets dropped at the bottleneck when ground truth is available,
    otherwise the retransmission fraction.
    """

    throughput_mbps: float
    queueing_delay_ms: float
    loss_rate: float
    connections: int
    total_bytes: int
    mean_rtt_ms: float = 0.0
    mean_utilization: float = 0.0

    @property
    def power(self) -> float:
        """P = r / d."""
        return power(self.throughput_mbps, self.queueing_delay_ms)

    @property
    def power_l(self) -> float:
        """P_l = r (1 - l) / d — the Cubic-tuning objective."""
        return power_with_loss(
            self.throughput_mbps, self.queueing_delay_ms, self.loss_rate
        )

    @property
    def log_power(self) -> float:
        """log(P) — the Remy objective."""
        return log_power(self.throughput_mbps, self.queueing_delay_ms)


def summarize_connections(
    stats: Sequence[ConnectionStats],
    *,
    bottleneck_loss_rate: Optional[float] = None,
    mean_utilization: float = 0.0,
    min_delay_floor_ms: float = 0.05,
) -> RunMetrics:
    """Aggregate per-connection stats into :class:`RunMetrics`.

    Connections that never delivered data (zero goodput and zero RTT
    samples) are excluded — they correspond to flows cut off at the end of
    the experiment before the first ACK.
    """
    useful = [s for s in stats if s.bytes_goodput > 0 or s.rtt_samples]
    if not useful:
        return RunMetrics(
            throughput_mbps=0.0,
            queueing_delay_ms=0.0,
            loss_rate=0.0,
            connections=0,
            total_bytes=0,
            mean_utilization=mean_utilization,
        )

    total_bytes = sum(s.bytes_goodput for s in useful)
    total_on_time = sum(s.duration for s in useful)
    throughput_mbps = (
        total_bytes * 8.0 / total_on_time / 1e6 if total_on_time > 0 else 0.0
    )

    # Weight each connection's queueing delay by its RTT sample count so
    # long connections (more samples) dominate proportionally.
    delay_weight = 0.0
    delay_sum = 0.0
    rtt_sum = 0.0
    for s in useful:
        n = len(s.rtt_samples)
        if n == 0:
            continue
        delay_sum += s.mean_queueing_delay * n
        rtt_sum += s.mean_rtt * n
        delay_weight += n
    queueing_delay_ms = (delay_sum / delay_weight * 1e3) if delay_weight else 0.0
    mean_rtt_ms = (rtt_sum / delay_weight * 1e3) if delay_weight else 0.0
    queueing_delay_ms = max(queueing_delay_ms, min_delay_floor_ms)

    if bottleneck_loss_rate is not None:
        loss_rate = bottleneck_loss_rate
    else:
        packets = sum(s.packets_sent for s in useful)
        retransmits = sum(s.retransmits for s in useful)
        loss_rate = retransmits / packets if packets else 0.0

    return RunMetrics(
        throughput_mbps=throughput_mbps,
        queueing_delay_ms=queueing_delay_ms,
        loss_rate=min(1.0, loss_rate),
        connections=len(useful),
        total_bytes=total_bytes,
        mean_rtt_ms=mean_rtt_ms,
        mean_utilization=mean_utilization,
    )


@dataclass(frozen=True)
class CrossRunSummary:
    """Mean/median aggregation of the same configuration across runs."""

    mean_throughput_mbps: float
    mean_queueing_delay_ms: float
    mean_loss_rate: float
    mean_power_l: float
    median_throughput_mbps: float
    median_queueing_delay_ms: float
    median_log_power: float
    runs: int


def summarize_runs(runs: Sequence[RunMetrics]) -> CrossRunSummary:
    """Aggregate several :class:`RunMetrics` of the same configuration."""
    if not runs:
        raise ValueError("summarize_runs needs at least one run")
    throughputs = [r.throughput_mbps for r in runs]
    delays = [r.queueing_delay_ms for r in runs]
    losses = [r.loss_rate for r in runs]
    powers = [r.power_l for r in runs]
    log_powers = [r.log_power for r in runs]
    return CrossRunSummary(
        mean_throughput_mbps=sum(throughputs) / len(runs),
        mean_queueing_delay_ms=sum(delays) / len(runs),
        mean_loss_rate=sum(losses) / len(runs),
        mean_power_l=sum(powers) / len(runs),
        median_throughput_mbps=median(throughputs),
        median_queueing_delay_ms=median(delays),
        median_log_power=median(log_powers),
        runs=len(runs),
    )


def finite_mean(values: Iterable[float]) -> float:
    """Mean of the finite values (ignores inf/NaN); 0.0 when none."""
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return 0.0
    return sum(finite) / len(finite)

"""RemyCC sender memory (feature vector).

Remy's congestion controller maps a small "memory" of recent observations
to an action.  We keep the three features of the original paper —
``ack_ewma`` (EWMA of ACK interarrival times), ``send_ewma`` (EWMA of the
sender timestamps echoed in ACKs), and ``rtt_ratio`` (last RTT over
minimum RTT) — and add the paper's Phi extension: ``util``, the shared
bottleneck-link utilization ("we extend the context (or 'memory' in Remy
parlance) maintained by each Remy sender with an additional dimension
corresponding to the bottleneck link utilization, u").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: EWMA gain used for both interarrival averages, as in Remy.
EWMA_ALPHA = 0.125

#: Feature names, in canonical order.
DIMENSIONS: Tuple[str, ...] = ("ack_ewma", "send_ewma", "rtt_ratio", "util")

#: Feature domains used for whisker boxes and normalization.  Times are in
#: seconds; rtt_ratio is dimensionless >= 1; util is a fraction.
DOMAIN: Dict[str, Tuple[float, float]] = {
    "ack_ewma": (0.0, 1.0),
    "send_ewma": (0.0, 1.0),
    "rtt_ratio": (1.0, 16.0),
    "util": (0.0, 1.0),
}


@dataclass(frozen=True)
class Memory:
    """One observation point in Remy's memory space."""

    ack_ewma: float = 0.0
    send_ewma: float = 0.0
    rtt_ratio: float = 1.0
    util: float = 0.0

    def value(self, dimension: str) -> float:
        """The coordinate along ``dimension``."""
        return getattr(self, dimension)

    def clamped(self) -> "Memory":
        """This memory with every coordinate clamped to its domain."""
        values = {}
        for dim in DIMENSIONS:
            lo, hi = DOMAIN[dim]
            values[dim] = min(hi, max(lo, self.value(dim)))
        return Memory(**values)

    @classmethod
    def initial(cls) -> "Memory":
        """Memory of a fresh connection (all features at rest)."""
        return cls()


class MemoryTracker:
    """Updates a :class:`Memory` from the sender's ACK stream.

    The tracker is owned by a RemyCC sender; ``util_provider`` is Phi's
    hook — a callable returning the current shared bottleneck-utilization
    estimate (ideal mode polls the live context; practical mode returns
    the value fetched once at connection start).
    """

    def __init__(self, util_provider=None) -> None:
        self._util_provider = util_provider
        self._last_ack_time: Optional[float] = None
        self._last_echo_time: Optional[float] = None
        self.memory = Memory.initial()

    def reset(self) -> None:
        """Reset to initial memory (after an idle period or timeout)."""
        self._last_ack_time = None
        self._last_echo_time = None
        self.memory = Memory.initial()

    def _current_util(self) -> float:
        if self._util_provider is None:
            return 0.0
        return float(min(1.0, max(0.0, self._util_provider())))

    def on_ack(
        self,
        ack_arrival_time: float,
        echoed_send_time: float,
        last_rtt: Optional[float],
        min_rtt: Optional[float],
    ) -> Memory:
        """Fold one ACK into the memory and return the updated value."""
        ack_ewma = self.memory.ack_ewma
        send_ewma = self.memory.send_ewma

        if self._last_ack_time is not None:
            sample = max(0.0, ack_arrival_time - self._last_ack_time)
            ack_ewma = (1 - EWMA_ALPHA) * ack_ewma + EWMA_ALPHA * sample
        if self._last_echo_time is not None:
            sample = max(0.0, echoed_send_time - self._last_echo_time)
            send_ewma = (1 - EWMA_ALPHA) * send_ewma + EWMA_ALPHA * sample

        self._last_ack_time = ack_arrival_time
        self._last_echo_time = echoed_send_time

        rtt_ratio = self.memory.rtt_ratio
        if last_rtt and min_rtt and min_rtt > 0:
            rtt_ratio = last_rtt / min_rtt

        self.memory = Memory(
            ack_ewma=ack_ewma,
            send_ewma=send_ewma,
            rtt_ratio=rtt_ratio,
            util=self._current_util(),
        ).clamped()
        return self.memory

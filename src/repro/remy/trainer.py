"""The Remy trainer: offline whisker-table optimization.

Remy "is trained offline using trace-driven simulation": starting from a
single whisker covering the whole memory domain, the trainer alternates

1. **action improvement** — greedily trying neighbour actions on each
   whisker (most-used first) and keeping changes that improve the median
   log-power objective over the training scenarios, and
2. **structure growth** — splitting the most-used whisker so the policy
   can specialize by memory region.

This is a faithful miniature of the original Remy optimizer; the paper
retrains it twice, once with the classic 3-feature memory and once with
the Phi ``util`` dimension added.

The simulator is injected as ``evaluator(table) -> float`` (higher is
better), so training is unit-testable against analytic toy objectives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from .whisker import WhiskerTable

TableEvaluator = Callable[[WhiskerTable], float]


@dataclass
class TrainingHistoryEntry:
    """One accepted improvement during training."""

    evaluation: int
    score: float
    whiskers: int
    note: str


@dataclass
class TrainingResult:
    """What :meth:`RemyTrainer.train` returns."""

    table: WhiskerTable
    score: float
    evaluations: int
    history: List[TrainingHistoryEntry] = field(default_factory=list)


class RemyTrainer:
    """Greedy whisker-table optimizer with an evaluation budget.

    Parameters
    ----------
    evaluator:
        Scores a candidate table (higher is better).  Each call typically
        runs one or more packet simulations, so the trainer treats calls
        as the unit of budget.
    dimensions:
        Memory features the table partitions on
        (:attr:`WhiskerTable.CLASSIC_DIMENSIONS` or
        :attr:`WhiskerTable.PHI_DIMENSIONS`).
    max_evaluations:
        Hard budget on evaluator calls.
    max_splits:
        Structure-growth rounds (each multiplies whisker count by 2^d).
    improvement_threshold:
        Relative improvement required to accept a candidate action.
    """

    def __init__(
        self,
        evaluator: TableEvaluator,
        dimensions: Sequence[str] = WhiskerTable.CLASSIC_DIMENSIONS,
        *,
        max_evaluations: int = 60,
        max_splits: int = 1,
        improvement_threshold: float = 1e-4,
        initial_table: Optional[WhiskerTable] = None,
    ) -> None:
        if max_evaluations < 1:
            raise ValueError(f"max_evaluations must be >= 1: {max_evaluations}")
        if max_splits < 0:
            raise ValueError(f"max_splits must be >= 0: {max_splits}")
        self.evaluator = evaluator
        self.dimensions = tuple(dimensions)
        self.max_evaluations = max_evaluations
        self.max_splits = max_splits
        self.improvement_threshold = improvement_threshold
        self.initial_table = initial_table
        self._evaluations = 0

    def _evaluate(self, table: WhiskerTable) -> float:
        self._evaluations += 1
        return self.evaluator(table)

    @property
    def budget_left(self) -> int:
        """Remaining evaluator calls."""
        return self.max_evaluations - self._evaluations

    def train(self) -> TrainingResult:
        """Run the optimize/split loop until the budget is exhausted."""
        self._evaluations = 0
        table = (
            self.initial_table.copy()
            if self.initial_table is not None
            else WhiskerTable(self.dimensions)
        )
        history: List[TrainingHistoryEntry] = []
        best_score = self._evaluate(table)
        history.append(
            TrainingHistoryEntry(self._evaluations, best_score, len(table), "initial")
        )

        for split_round in range(self.max_splits + 1):
            best_score = self._improve_actions(table, best_score, history)
            if split_round < self.max_splits and self.budget_left > 0:
                victim = table.most_used()
                table.split_whisker(victim)
                history.append(
                    TrainingHistoryEntry(
                        self._evaluations,
                        best_score,
                        len(table),
                        f"split whisker (now {len(table)})",
                    )
                )
            if self.budget_left <= 0:
                break

        return TrainingResult(
            table=table,
            score=best_score,
            evaluations=self._evaluations,
            history=history,
        )

    def _improve_actions(
        self,
        table: WhiskerTable,
        best_score: float,
        history: List[TrainingHistoryEntry],
    ) -> float:
        improved = True
        while improved and self.budget_left > 0:
            improved = False
            # Most-used whiskers first: they influence the objective most.
            order = sorted(table.whiskers, key=lambda w: -w.use_count)
            for whisker in order:
                if self.budget_left <= 0:
                    break
                original = whisker.action
                for candidate in original.neighbours():
                    if self.budget_left <= 0:
                        break
                    whisker.action = candidate
                    score = self._evaluate(table)
                    if score > best_score * (1 + self.improvement_threshold) or (
                        best_score <= 0 and score > best_score + self.improvement_threshold
                    ):
                        best_score = score
                        original = candidate
                        improved = True
                        history.append(
                            TrainingHistoryEntry(
                                self._evaluations,
                                score,
                                len(table),
                                "accepted action",
                            )
                        )
                    else:
                        whisker.action = original
        return best_score

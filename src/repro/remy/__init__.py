"""Remy: machine-learned congestion control (rule tables and trainer)."""

from .memory import DIMENSIONS, DOMAIN, EWMA_ALPHA, Memory, MemoryTracker
from .whisker import ACTION_BOUNDS, Action, Whisker, WhiskerTable

__all__ = [
    "ACTION_BOUNDS",
    "DIMENSIONS",
    "DOMAIN",
    "EWMA_ALPHA",
    "Action",
    "Memory",
    "MemoryTracker",
    "Whisker",
    "WhiskerTable",
]

"""Whiskers: Remy's rule table.

A :class:`WhiskerTable` partitions the memory space into axis-aligned
boxes ("whiskers"), each carrying an :class:`Action`.  The Phi variant
("Remy-Phi") adds the ``util`` dimension to the partition so the learned
policy can condition directly on shared bottleneck utilization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .memory import DIMENSIONS, DOMAIN, Memory

#: Bounds for action components during training.
ACTION_BOUNDS = {
    "window_increment": (-10.0, 20.0),
    "window_multiple": (0.1, 2.0),
    "intersend_s": (0.0001, 1.0),
}


@dataclass(frozen=True)
class Action:
    """What a whisker tells the sender to do.

    ``cwnd <- window_multiple * cwnd + window_increment`` and pace packets
    at least ``intersend_s`` apart, exactly Remy's action space.
    """

    window_increment: float = 1.0
    window_multiple: float = 1.0
    intersend_s: float = 0.003

    def __post_init__(self) -> None:
        lo, hi = ACTION_BOUNDS["window_multiple"]
        if not lo <= self.window_multiple <= hi:
            raise ValueError(f"window_multiple out of [{lo}, {hi}]: {self.window_multiple}")
        lo, hi = ACTION_BOUNDS["intersend_s"]
        if not lo <= self.intersend_s <= hi:
            raise ValueError(f"intersend_s out of [{lo}, {hi}]: {self.intersend_s}")

    def apply(self, cwnd: float) -> float:
        """The new congestion window after this action."""
        return max(1.0, self.window_multiple * cwnd + self.window_increment)

    def neighbours(self) -> List["Action"]:
        """Candidate perturbations explored by the trainer."""
        candidates = []
        for delta in (-2.0, -1.0, 1.0, 2.0):
            candidates.append(self._try(window_increment=self.window_increment + delta))
        for factor in (0.8, 0.9, 1.1, 1.2):
            candidates.append(self._try(window_multiple=self.window_multiple * factor))
        for factor in (0.5, 0.75, 1.333, 2.0):
            candidates.append(self._try(intersend_s=self.intersend_s * factor))
        return [c for c in candidates if c is not None]

    def _try(self, **kwargs) -> Optional["Action"]:
        values = {
            "window_increment": self.window_increment,
            "window_multiple": self.window_multiple,
            "intersend_s": self.intersend_s,
        }
        values.update(kwargs)
        lo, hi = ACTION_BOUNDS["window_increment"]
        values["window_increment"] = min(hi, max(lo, values["window_increment"]))
        lo, hi = ACTION_BOUNDS["window_multiple"]
        values["window_multiple"] = min(hi, max(lo, values["window_multiple"]))
        lo, hi = ACTION_BOUNDS["intersend_s"]
        values["intersend_s"] = min(hi, max(lo, values["intersend_s"]))
        return Action(**values)

    @classmethod
    def default(cls) -> "Action":
        """A sane conservative starting action."""
        return cls(window_increment=1.0, window_multiple=1.0, intersend_s=0.003)


Box = Dict[str, Tuple[float, float]]


@dataclass
class Whisker:
    """One rule: an axis-aligned box in memory space plus an action."""

    bounds: Box
    action: Action
    use_count: int = 0

    def contains(self, memory: Memory) -> bool:
        """Whether ``memory`` falls inside this whisker's box.

        Boxes are half-open except at the domain's upper edge, where they
        are closed, so the whole domain stays covered after splits.
        """
        for dim, (lo, hi) in self.bounds.items():
            value = memory.value(dim)
            domain_hi = DOMAIN[dim][1]
            at_top = hi >= domain_hi
            if value < lo:
                return False
            if at_top:
                if value > hi:
                    return False
            elif value >= hi:
                return False
        return True

    def split(self) -> List["Whisker"]:
        """Split the box at its midpoint along every dimension (2^d children).

        Children inherit the parent's action and start with zero use count.
        """
        dims = list(self.bounds)
        children: List[Whisker] = []
        n = len(dims)
        for mask in range(2 ** n):
            bounds: Box = {}
            for bit, dim in enumerate(dims):
                lo, hi = self.bounds[dim]
                mid = (lo + hi) / 2.0
                bounds[dim] = (lo, mid) if not (mask >> bit) & 1 else (mid, hi)
            children.append(Whisker(bounds=bounds, action=self.action))
        return children

    def volume(self) -> float:
        """Geometric volume of the box (for diagnostics)."""
        result = 1.0
        for lo, hi in self.bounds.values():
            result *= max(0.0, hi - lo)
        return result


class WhiskerTable:
    """A complete rule table covering the memory domain.

    Parameters
    ----------
    dimensions:
        Which memory features the table partitions on.  The classic Remy
        table uses ``("ack_ewma", "send_ewma", "rtt_ratio")``; Remy-Phi
        adds ``"util"``.
    """

    CLASSIC_DIMENSIONS: Tuple[str, ...] = ("ack_ewma", "send_ewma", "rtt_ratio")
    PHI_DIMENSIONS: Tuple[str, ...] = ("ack_ewma", "send_ewma", "rtt_ratio", "util")

    def __init__(
        self,
        dimensions: Sequence[str] = CLASSIC_DIMENSIONS,
        whiskers: Optional[List[Whisker]] = None,
    ) -> None:
        unknown = set(dimensions) - set(DIMENSIONS)
        if unknown:
            raise ValueError(f"unknown memory dimensions: {sorted(unknown)}")
        self.dimensions: Tuple[str, ...] = tuple(dimensions)
        if whiskers is None:
            bounds = {dim: DOMAIN[dim] for dim in self.dimensions}
            whiskers = [Whisker(bounds=bounds, action=Action.default())]
        self.whiskers = whiskers

    @classmethod
    def partitioned(
        cls,
        dimensions: Sequence[str],
        split_dimension: str,
        n_parts: int,
        action: Optional[Action] = None,
    ) -> "WhiskerTable":
        """A table pre-partitioned into ``n_parts`` equal bins along one
        dimension (all other dimensions span their full domain).

        Used to seed Remy-Phi training with distinct whiskers per shared-
        utilization band without paying for a full 2^d split.
        """
        if split_dimension not in dimensions:
            raise ValueError(
                f"split dimension {split_dimension!r} not in table dimensions"
            )
        if n_parts < 1:
            raise ValueError(f"n_parts must be >= 1, got {n_parts}")
        base_action = action if action is not None else Action.default()
        lo, hi = DOMAIN[split_dimension]
        width = (hi - lo) / n_parts
        whiskers = []
        for part in range(n_parts):
            bounds = {dim: DOMAIN[dim] for dim in dimensions}
            bounds[split_dimension] = (lo + part * width, lo + (part + 1) * width)
            whiskers.append(Whisker(bounds=bounds, action=base_action))
        return cls(dimensions, whiskers)

    def find(self, memory: Memory) -> Whisker:
        """The whisker whose box contains ``memory`` (after clamping)."""
        clamped = memory.clamped()
        for whisker in self.whiskers:
            if whisker.contains(clamped):
                return whisker
        raise LookupError(f"no whisker covers memory {clamped}")

    def act(self, memory: Memory) -> Action:
        """Look up and record the action for ``memory``."""
        whisker = self.find(memory)
        whisker.use_count += 1
        return whisker.action

    def reset_use_counts(self) -> None:
        """Zero all use counters (between training evaluations)."""
        for whisker in self.whiskers:
            whisker.use_count = 0

    def most_used(self) -> Whisker:
        """The whisker with the highest use count."""
        return max(self.whiskers, key=lambda w: w.use_count)

    def split_whisker(self, whisker: Whisker) -> None:
        """Replace ``whisker`` with its 2^d children."""
        index = self.whiskers.index(whisker)
        self.whiskers[index:index + 1] = whisker.split()

    def copy(self) -> "WhiskerTable":
        """Deep copy (actions are immutable; boxes are copied)."""
        return WhiskerTable(
            self.dimensions,
            [
                Whisker(bounds=dict(w.bounds), action=w.action, use_count=w.use_count)
                for w in self.whiskers
            ],
        )

    def __len__(self) -> int:
        return len(self.whiskers)

    # ------------------------------------------------------------------
    # Serialization (trained tables ship with benches)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the table to a JSON string."""
        payload = {
            "dimensions": list(self.dimensions),
            "whiskers": [
                {
                    "bounds": {dim: list(b) for dim, b in w.bounds.items()},
                    "action": {
                        "window_increment": w.action.window_increment,
                        "window_multiple": w.action.window_multiple,
                        "intersend_s": w.action.intersend_s,
                    },
                }
                for w in self.whiskers
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "WhiskerTable":
        """Deserialize a table produced by :meth:`to_json`."""
        payload = json.loads(text)
        whiskers = [
            Whisker(
                bounds={dim: tuple(b) for dim, b in item["bounds"].items()},
                action=Action(**item["action"]),
            )
            for item in payload["whiskers"]
        ]
        return cls(tuple(payload["dimensions"]), whiskers)

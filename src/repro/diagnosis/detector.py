"""Unreachability-event detection on sliced request volumes.

For each telemetry slice, fits a :class:`SeasonalBaseline` on a training
prefix and flags sustained dips (robust z-score below a threshold for a
minimum number of consecutive bins) in the scoring suffix — the Figure-5
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

import numpy as np

from .events import SliceKey
from .timeseries import SeasonalBaseline


@dataclass(frozen=True)
class DetectedDip:
    """A sustained anomalous dip on one slice."""

    key: SliceKey
    start_bin: int
    end_bin: int  # exclusive
    min_zscore: float
    mean_drop_fraction: float

    @property
    def duration_bins(self) -> int:
        """Dip length in bins."""
        return self.end_bin - self.start_bin


@dataclass
class DetectorConfig:
    """Detection thresholds.

    ``min_drop_fraction`` suppresses statistically-significant but
    operationally-trivial dips (a few percent below baseline): an
    unreachability event by definition removes a substantial share of a
    slice's requests.
    """

    z_threshold: float = -3.0
    min_consecutive_bins: int = 3
    min_drop_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.z_threshold >= 0:
            raise ValueError(f"z_threshold must be negative: {self.z_threshold}")
        if self.min_consecutive_bins < 1:
            raise ValueError(
                f"min_consecutive_bins must be >= 1: {self.min_consecutive_bins}"
            )
        if not 0 <= self.min_drop_fraction < 1:
            raise ValueError(
                f"min_drop_fraction must be in [0, 1): {self.min_drop_fraction}"
            )


class UnreachabilityDetector:
    """Per-slice anomaly detection over a train/score split."""

    def __init__(
        self,
        period_bins: int,
        config: DetectorConfig = None,
    ) -> None:
        self.period_bins = period_bins
        self.config = config if config is not None else DetectorConfig()

    def detect(
        self,
        series: Mapping[SliceKey, np.ndarray],
        train_bins: int,
    ) -> List[DetectedDip]:
        """Find sustained dips in ``series[train_bins:]``.

        ``train_bins`` must cover at least two seasonal periods; scoring
        bins are indexed absolutely (offset by ``train_bins``).
        """
        dips: List[DetectedDip] = []
        for key, values in series.items():
            values = np.asarray(values, dtype=float)
            if values.size <= train_bins:
                raise ValueError(
                    f"series for {key} has {values.size} bins; needs more than "
                    f"train_bins={train_bins}"
                )
            baseline = SeasonalBaseline(self.period_bins).fit(values[:train_bins])
            scores = baseline.zscores(train_bins, values[train_bins:])
            dips.extend(self._runs_to_dips(key, baseline, values, scores, train_bins))
        return sorted(dips, key=lambda d: (d.start_bin, d.key))

    def _runs_to_dips(
        self,
        key: SliceKey,
        baseline: SeasonalBaseline,
        values: np.ndarray,
        scores: np.ndarray,
        offset: int,
    ) -> List[DetectedDip]:
        config = self.config
        dips = []
        run_start = None
        for i, z in enumerate(list(scores) + [0.0]):  # sentinel flushes tail
            if z <= config.z_threshold:
                if run_start is None:
                    run_start = i
                continue
            if run_start is not None:
                run_len = i - run_start
                if run_len >= config.min_consecutive_bins:
                    abs_start = offset + run_start
                    abs_end = offset + i
                    window = range(abs_start, abs_end)
                    drops = []
                    for b in window:
                        expected = baseline.expected(b).expected
                        if expected > 0:
                            drops.append(1.0 - values[b] / expected)
                    mean_drop = float(np.mean(drops)) if drops else 0.0
                    if mean_drop >= config.min_drop_fraction:
                        dips.append(
                            DetectedDip(
                                key=key,
                                start_bin=abs_start,
                                end_bin=abs_end,
                                min_zscore=float(np.min(scores[run_start:i])),
                                mean_drop_fraction=mean_drop,
                            )
                        )
                run_start = None
        return dips

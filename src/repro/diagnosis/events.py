"""Synthetic request-volume telemetry with injectable outages.

Substitutes the paper's production telemetry (documented in DESIGN.md):
a global cloud service receiving requests from clients sliced by
(client AS, metro, service).  Each slice has a base rate modulated by a
diurnal curve plus Poisson noise; an :class:`OutageSpec` suppresses a
subset of slices over a window — e.g. Figure 5's "unreachability event
localized to an ISP network in a metro that lasted for around 2 hours".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

SliceKey = Tuple[str, str, str]
"""(client AS, metro, service)."""


@dataclass(frozen=True)
class TelemetryConfig:
    """Dimensions and rates of the synthetic telemetry."""

    ases: Sequence[str] = ("isp-a", "isp-b", "isp-c", "isp-d")
    metros: Sequence[str] = ("nyc", "lon", "blr", "syd")
    services: Sequence[str] = ("voip", "storage")
    bin_minutes: int = 5
    base_rate: float = 1200.0
    diurnal_amplitude: float = 0.4

    def __post_init__(self) -> None:
        if self.bin_minutes < 1:
            raise ValueError(f"bin_minutes must be >= 1: {self.bin_minutes}")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1): {self.diurnal_amplitude}"
            )

    @property
    def bins_per_day(self) -> int:
        """Seasonal period in bins."""
        return 24 * 60 // self.bin_minutes

    def slice_keys(self) -> List[SliceKey]:
        """Every (AS, metro, service) combination."""
        return [
            (asn, metro, service)
            for asn in self.ases
            for metro in self.metros
            for service in self.services
        ]


@dataclass(frozen=True)
class OutageSpec:
    """An injected unreachability event.

    ``None`` in a dimension means "all values" — e.g. Figure 5's event is
    ``OutageSpec(asn="isp-a", metro="nyc", service=None, ...)``: one ISP
    in one metro, across every service.
    """

    start_bin: int
    duration_bins: int
    severity: float  # fraction of requests lost, 1.0 = total blackout
    asn: Optional[str] = None
    metro: Optional[str] = None
    service: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0 < self.severity <= 1:
            raise ValueError(f"severity must be in (0, 1]: {self.severity}")
        if self.duration_bins < 1:
            raise ValueError(f"duration_bins must be >= 1: {self.duration_bins}")

    def affects(self, key: SliceKey, bin_index: int) -> bool:
        """Whether this outage suppresses ``key`` at ``bin_index``."""
        if not self.start_bin <= bin_index < self.start_bin + self.duration_bins:
            return False
        asn, metro, service = key
        if self.asn is not None and asn != self.asn:
            return False
        if self.metro is not None and metro != self.metro:
            return False
        if self.service is not None and service != self.service:
            return False
        return True

    @property
    def end_bin(self) -> int:
        """First bin after the outage."""
        return self.start_bin + self.duration_bins


class TelemetryGenerator:
    """Generates per-slice request-volume series."""

    def __init__(
        self,
        config: TelemetryConfig,
        rng: np.random.Generator,
        outages: Sequence[OutageSpec] = (),
    ) -> None:
        self.config = config
        self.rng = rng
        self.outages = list(outages)
        # Stable per-slice rate multipliers so slices differ in size.
        self._multipliers: Dict[SliceKey, float] = {}
        for key in config.slice_keys():
            self._multipliers[key] = float(self.rng.uniform(0.4, 1.6))

    def _expected_rate(self, key: SliceKey, bin_index: int) -> float:
        cfg = self.config
        phase = 2 * math.pi * (bin_index % cfg.bins_per_day) / cfg.bins_per_day
        diurnal = 1.0 + cfg.diurnal_amplitude * math.sin(phase)
        return cfg.base_rate * self._multipliers[key] * diurnal

    def generate(self, n_bins: int) -> Dict[SliceKey, np.ndarray]:
        """Per-slice volume series of length ``n_bins`` (outages applied)."""
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1: {n_bins}")
        series: Dict[SliceKey, np.ndarray] = {}
        for key in self.config.slice_keys():
            expected = np.array(
                [self._expected_rate(key, b) for b in range(n_bins)]
            )
            for outage in self.outages:
                for b in range(n_bins):
                    if outage.affects(key, b):
                        expected[b] *= 1.0 - outage.severity
            series[key] = self.rng.poisson(expected).astype(float)
        return series

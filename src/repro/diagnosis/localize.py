"""Dimensional localization of detected unreachability events.

Given the per-slice dips found by the detector, determines the most
specific (AS, metro, service) pattern that explains them — Figure 5's
outcome: "an unreachability event ... localized to an ISP network on a
particular metro".  The cross-sender aggregation is what makes this
possible: a single client only knows *it* cannot reach the service; the
provider, seeing affected and unaffected slices side by side, can name
the culprit dimension values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from .detector import DetectedDip
from .events import SliceKey

DIMENSION_NAMES = ("asn", "metro", "service")


@dataclass(frozen=True)
class LocalizedEvent:
    """A grouped, localized unreachability event.

    ``None`` in a dimension means the event spans all its values (i.e.
    the dimension is not implicated).
    """

    asn: Optional[str]
    metro: Optional[str]
    service: Optional[str]
    start_bin: int
    end_bin: int
    affected_slices: int
    mean_drop_fraction: float

    @property
    def duration_bins(self) -> int:
        """Event length in bins."""
        return self.end_bin - self.start_bin

    def describe(self) -> str:
        """Human-readable localization, e.g. ``asn=isp-a, metro=nyc``."""
        parts = []
        for name, value in zip(DIMENSION_NAMES, (self.asn, self.metro, self.service)):
            if value is not None:
                parts.append(f"{name}={value}")
        return ", ".join(parts) if parts else "global"


def _overlaps(a: DetectedDip, b: DetectedDip, slack_bins: int) -> bool:
    return a.start_bin <= b.end_bin + slack_bins and b.start_bin <= a.end_bin + slack_bins


def group_dips(
    dips: Sequence[DetectedDip], slack_bins: int = 2
) -> List[List[DetectedDip]]:
    """Cluster per-slice dips that overlap in time into candidate events."""
    groups: List[List[DetectedDip]] = []
    for dip in sorted(dips, key=lambda d: d.start_bin):
        placed = False
        for group in groups:
            if any(_overlaps(dip, member, slack_bins) for member in group):
                group.append(dip)
                placed = True
                break
        if not placed:
            groups.append([dip])
    return groups


def localize_group(
    group: Sequence[DetectedDip],
    all_keys: Sequence[SliceKey],
) -> LocalizedEvent:
    """Name the dimension values that characterize one event group.

    A dimension value is implicated when the affected slices cover *all*
    of that value's slices and *only* that value — the classic "common
    denominator" attribution.
    """
    if not group:
        raise ValueError("cannot localize an empty group")
    affected: Set[SliceKey] = {dip.key for dip in group}

    localized: List[Optional[str]] = []
    for dim in range(3):
        affected_values = {key[dim] for key in affected}
        if len(affected_values) == 1:
            value = next(iter(affected_values))
            localized.append(value)
        else:
            localized.append(None)

    # Verify coverage: every slice matching the localized pattern should be
    # affected, otherwise generalize the weakest dimension to None.
    def matches(key: SliceKey, pattern: List[Optional[str]]) -> bool:
        return all(p is None or key[d] == p for d, p in enumerate(pattern))

    matching = [key for key in all_keys if matches(key, localized)]
    coverage = len(affected & set(matching)) / len(matching) if matching else 0.0

    start = min(dip.start_bin for dip in group)
    end = max(dip.end_bin for dip in group)
    mean_drop = sum(dip.mean_drop_fraction for dip in group) / len(group)
    return LocalizedEvent(
        asn=localized[0],
        metro=localized[1],
        service=localized[2],
        start_bin=start,
        end_bin=end,
        affected_slices=len(affected),
        mean_drop_fraction=mean_drop if coverage > 0 else 0.0,
    )


def localize(
    dips: Sequence[DetectedDip],
    all_keys: Sequence[SliceKey],
    slack_bins: int = 2,
) -> List[LocalizedEvent]:
    """Full pipeline: cluster dips, then localize each cluster."""
    return [localize_group(group, all_keys) for group in group_dips(dips, slack_bins)]

"""Seasonal time-series baseline model for request volumes.

Section 3.4: "We build a time series model for the volume of requests
received by a cloud service, sliced along various dimensions (client
AS'es, data center locations, etc.), and look for anomalous departures
from the model."

The model is a per-bin diurnal profile: for each time-of-day bin it
learns a robust location/scale (median and MAD) of historical volumes,
then scores new observations as robust z-scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

#: Scale factor turning a median absolute deviation into a std estimate.
MAD_TO_SIGMA = 1.4826


@dataclass(frozen=True)
class BaselinePoint:
    """Expected volume and spread for one time bin."""

    expected: float
    sigma: float


class SeasonalBaseline:
    """Robust diurnal baseline for one request-volume series.

    Parameters
    ----------
    period_bins:
        Bins per seasonal period (e.g. 288 five-minute bins per day).
    min_history_periods:
        Minimum full periods of history before scoring is meaningful.
    """

    def __init__(self, period_bins: int, min_history_periods: int = 2) -> None:
        if period_bins < 1:
            raise ValueError(f"period_bins must be >= 1: {period_bins}")
        if min_history_periods < 1:
            raise ValueError(
                f"min_history_periods must be >= 1: {min_history_periods}"
            )
        self.period_bins = period_bins
        self.min_history_periods = min_history_periods
        self._fitted: Optional[List[BaselinePoint]] = None

    def fit(self, history: Sequence[float]) -> "SeasonalBaseline":
        """Learn the per-bin profile from a history of volumes.

        ``history[i]`` is the volume of bin ``i``; bin ``i`` belongs to
        phase ``i % period_bins``.
        """
        values = np.asarray(history, dtype=float)
        if values.ndim != 1:
            raise ValueError("history must be one-dimensional")
        if values.size < self.period_bins * self.min_history_periods:
            raise ValueError(
                f"need >= {self.period_bins * self.min_history_periods} bins of "
                f"history, got {values.size}"
            )
        # First pass: per-phase medians (the seasonal profile) and the
        # residuals around them.  With few history periods a per-phase MAD
        # rests on a handful of samples and can badly underestimate sigma,
        # so each phase's sigma is floored at the global residual scale.
        phase_medians = []
        residuals = np.empty_like(values)
        for phase in range(self.period_bins):
            phase_values = values[phase :: self.period_bins]
            median = float(np.median(phase_values))
            phase_medians.append(median)
            residuals[phase :: self.period_bins] = phase_values - median
        global_mad = float(np.median(np.abs(residuals)))

        points = []
        for phase in range(self.period_bins):
            phase_values = values[phase :: self.period_bins]
            median = phase_medians[phase]
            mad = float(np.median(np.abs(phase_values - median)))
            sigma = max(
                MAD_TO_SIGMA * mad,
                MAD_TO_SIGMA * global_mad,
                0.01 * max(median, 1.0),
            )
            points.append(BaselinePoint(expected=median, sigma=sigma))
        self._fitted = points
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted is not None

    def expected(self, bin_index: int) -> BaselinePoint:
        """The learned profile at ``bin_index``'s phase."""
        if self._fitted is None:
            raise RuntimeError("baseline must be fitted before use")
        return self._fitted[bin_index % self.period_bins]

    def zscore(self, bin_index: int, value: float) -> float:
        """Robust z-score of ``value`` at ``bin_index`` (negative = dip)."""
        point = self.expected(bin_index)
        return (value - point.expected) / point.sigma

    def zscores(self, start_bin: int, values: Sequence[float]) -> np.ndarray:
        """Vectorized z-scores for consecutive bins from ``start_bin``."""
        return np.array(
            [self.zscore(start_bin + i, v) for i, v in enumerate(values)]
        )

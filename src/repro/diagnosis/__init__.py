"""Problem diagnosis (Section 3.4): time-series anomaly detection on
request volumes sliced by (AS, metro, service), and dimensional
localization of unreachability events (Figure 5)."""

from .detector import DetectedDip, DetectorConfig, UnreachabilityDetector
from .events import OutageSpec, SliceKey, TelemetryConfig, TelemetryGenerator
from .localize import (
    DIMENSION_NAMES,
    LocalizedEvent,
    group_dips,
    localize,
    localize_group,
)
from .report import IncidentReport, render_all, render_incident, severity_grade
from .timeseries import MAD_TO_SIGMA, BaselinePoint, SeasonalBaseline

__all__ = [
    "DIMENSION_NAMES",
    "MAD_TO_SIGMA",
    "BaselinePoint",
    "DetectedDip",
    "DetectorConfig",
    "IncidentReport",
    "LocalizedEvent",
    "OutageSpec",
    "SeasonalBaseline",
    "SliceKey",
    "TelemetryConfig",
    "TelemetryGenerator",
    "UnreachabilityDetector",
    "group_dips",
    "localize",
    "localize_group",
    "render_all",
    "render_incident",
    "severity_grade",
]

"""Incident report rendering.

Turns the detector/localizer output into the operator-facing artifact a
"war room" consumes: a plain-text incident report naming the affected
population, the timeline, and severity — the human end of the Figure-5
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .detector import DetectedDip
from .events import TelemetryConfig
from .localize import LocalizedEvent


def _format_duration(minutes: float) -> str:
    if minutes < 60:
        return f"{minutes:.0f} minutes"
    hours = minutes / 60.0
    return f"{hours:.1f} hours"


@dataclass(frozen=True)
class IncidentReport:
    """One rendered incident."""

    title: str
    body: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.title}\n{self.body}"


def severity_grade(drop_fraction: float) -> str:
    """Operator severity label from the mean request drop."""
    if not 0 <= drop_fraction <= 1:
        raise ValueError(f"drop fraction must be in [0, 1]: {drop_fraction}")
    if drop_fraction >= 0.8:
        return "SEV-1 (blackout)"
    if drop_fraction >= 0.4:
        return "SEV-2 (major degradation)"
    if drop_fraction >= 0.1:
        return "SEV-3 (partial degradation)"
    return "SEV-4 (minor anomaly)"


def render_incident(
    event: LocalizedEvent,
    config: TelemetryConfig,
    dips: Sequence[DetectedDip] = (),
) -> IncidentReport:
    """Render one localized event as an operator incident report."""
    minutes = event.duration_bins * config.bin_minutes
    start_min = event.start_bin * config.bin_minutes
    scope = event.describe()
    grade = severity_grade(event.mean_drop_fraction)

    lines = [
        f"severity : {grade}",
        f"scope    : {scope}",
        f"impact   : ~{event.mean_drop_fraction:.0%} of requests lost "
        f"across {event.affected_slices} telemetry slice(s)",
        f"window   : t+{start_min} min for {_format_duration(minutes)}",
    ]
    related = [d for d in dips if event.start_bin <= d.start_bin < event.end_bin]
    if related:
        worst = min(related, key=lambda d: d.min_zscore)
        lines.append(
            f"evidence : strongest dip on {'/'.join(worst.key)} "
            f"(z = {worst.min_zscore:.1f})"
        )
    if event.asn is not None and event.metro is not None:
        lines.append(
            "action   : engage peering/NOC contacts for the named ISP in "
            "the named metro; client-side mitigation (reroute via another "
            "POP) may apply"
        )
    elif event.service is not None:
        lines.append(
            "action   : service-specific regression suspected; page the "
            f"{event.service} on-call"
        )
    else:
        lines.append("action   : global event; check provider-side infrastructure")

    title = f"[{grade.split()[0]}] unreachability: {scope}"
    return IncidentReport(title=title, body="\n".join(lines))


def render_all(
    events: Sequence[LocalizedEvent],
    config: TelemetryConfig,
    dips: Sequence[DetectedDip] = (),
) -> List[IncidentReport]:
    """Render every localized event."""
    return [render_incident(event, config, dips) for event in events]

"""Informed adaptation without cooperation (Section 3.2): shared-data-
driven jitter buffer sizing and duplicate-ACK threshold selection."""

from .dupack import (
    MAX_THRESHOLD,
    MIN_THRESHOLD,
    DupAckRecommendation,
    PathKey,
    ReorderingObservatory,
    reordering_depths,
)
from .jitterbuffer import (
    DEFAULT_SAFETY_FACTOR,
    UNINFORMED_DEFAULT_BUFFER_S,
    JitterBufferRecommendation,
    JitterObservatory,
    buffer_tradeoff_curve,
    late_loss_rate,
)

__all__ = [
    "DEFAULT_SAFETY_FACTOR",
    "MAX_THRESHOLD",
    "MIN_THRESHOLD",
    "UNINFORMED_DEFAULT_BUFFER_S",
    "DupAckRecommendation",
    "JitterBufferRecommendation",
    "JitterObservatory",
    "PathKey",
    "ReorderingObservatory",
    "buffer_tradeoff_curve",
    "late_loss_rate",
    "reordering_depths",
]

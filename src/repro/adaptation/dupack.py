"""Informed duplicate-ACK threshold selection (Section 3.2).

"The threshold of 3 duplicate ACKs typically used to trigger TCP fast
retransmission could be adjusted if the experience of other connections
suggests that reordering is prevalent."

Connections contribute observed reordering depths (how far a packet
arrived ahead of an earlier one) per path; a new connection asks for a
threshold that keeps the spurious-fast-retransmit probability below a
target.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence, Tuple

import numpy as np

from ..transport.base import DEFAULT_DUPACK_THRESHOLD

PathKey = Tuple[str, str]
"""(source site, destination site/AS)."""

#: Never recommend below the RFC-standard 3 dupACKs.
MIN_THRESHOLD = 3

#: Cap so a pathological path cannot disable fast retransmit entirely.
MAX_THRESHOLD = 12


def reordering_depths(arrival_order: Sequence[int]) -> List[int]:
    """Per-packet reordering depth of an arrival sequence.

    ``arrival_order`` lists packet sequence numbers in arrival order.  A
    packet's depth is the number of earlier-sequenced packets that were
    still missing when it arrived — each of those would generate one
    duplicate ACK at the receiver.  In-order arrivals contribute depth 0.
    """
    depths = []
    seen: set = set()
    for seq in arrival_order:
        if seq in seen:
            raise ValueError(f"duplicate sequence number in arrival order: {seq}")
        seen.add(seq)
        missing_before = sum(1 for s in range(seq) if s not in seen)
        depths.append(missing_before)
    return depths


@dataclass(frozen=True)
class DupAckRecommendation:
    """Advice for a new connection on a path."""

    threshold: int
    samples: int
    spurious_probability: float  # estimated at the recommended threshold


class ReorderingObservatory:
    """Shared per-path reordering statistics."""

    def __init__(self, max_samples_per_path: int = 100_000) -> None:
        if max_samples_per_path < 1:
            raise ValueError(
                f"max_samples_per_path must be >= 1: {max_samples_per_path}"
            )
        self._depths: Dict[PathKey, Deque[int]] = defaultdict(
            lambda: deque(maxlen=max_samples_per_path)
        )

    def record_depths(self, path: PathKey, depths: Sequence[int]) -> None:
        """Contribute observed reordering depths (0 = in order)."""
        for depth in depths:
            if depth < 0:
                raise ValueError(f"depth must be >= 0: {depth}")
            self._depths[path].append(int(depth))

    def record_arrivals(self, path: PathKey, arrival_order: Sequence[int]) -> None:
        """Contribute a raw arrival sequence (converted to depths)."""
        self.record_depths(path, reordering_depths(arrival_order))

    def sample_count(self, path: PathKey) -> int:
        """Samples held for ``path``."""
        return len(self._depths.get(path, ()))

    def spurious_probability(self, path: PathKey, threshold: int) -> float:
        """P[a packet's reordering depth >= threshold] on ``path``.

        A depth >= threshold means reordering alone would trigger a
        (spurious) fast retransmit at that dupACK threshold.
        """
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1: {threshold}")
        samples = self._depths.get(path)
        if not samples:
            return 0.0
        array = np.asarray(samples)
        return float(np.mean(array >= threshold))

    def recommend(
        self,
        path: PathKey,
        *,
        target_spurious: float = 0.001,
    ) -> DupAckRecommendation:
        """Smallest threshold whose spurious-retransmit rate meets target.

        Without shared data the standard threshold of 3 is returned.
        """
        if not 0 < target_spurious < 1:
            raise ValueError(
                f"target_spurious must be in (0, 1): {target_spurious}"
            )
        samples = self._depths.get(path)
        if not samples:
            return DupAckRecommendation(
                threshold=DEFAULT_DUPACK_THRESHOLD,
                samples=0,
                spurious_probability=0.0,
            )
        for threshold in range(MIN_THRESHOLD, MAX_THRESHOLD + 1):
            probability = self.spurious_probability(path, threshold)
            if probability <= target_spurious:
                return DupAckRecommendation(
                    threshold=threshold,
                    samples=len(samples),
                    spurious_probability=probability,
                )
        return DupAckRecommendation(
            threshold=MAX_THRESHOLD,
            samples=len(samples),
            spurious_probability=self.spurious_probability(path, MAX_THRESHOLD),
        )

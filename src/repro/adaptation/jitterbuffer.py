"""Informed jitter-buffer sizing (Section 3.2).

"The jitter buffer size for audio-video streaming could be initialized
and updated over time based on the shared information."

A :class:`JitterObservatory` pools one-way-delay-variation observations
per network location (contributed by the entity's other streams); a new
stream asks it for an initial buffer size instead of starting from a
fixed guess and adapting slowly.  :func:`late_loss_rate` quantifies the
benefit: packets arriving after their playout deadline are lost to the
codec, so a well-chosen buffer trades a little latency for far fewer
late losses.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Sequence, Tuple

import numpy as np

LocationKey = Tuple[str, str]
"""(client AS, metro)."""

#: Default fixed initial buffer used by uninformed clients (seconds).
UNINFORMED_DEFAULT_BUFFER_S = 0.040

#: Safety factor applied to the jitter quantile when recommending a size.
DEFAULT_SAFETY_FACTOR = 1.2


@dataclass(frozen=True)
class JitterBufferRecommendation:
    """What the observatory tells a new stream."""

    buffer_s: float
    samples: int
    p95_jitter_s: float


class JitterObservatory:
    """Shared per-location jitter statistics."""

    def __init__(self, max_samples_per_location: int = 50_000) -> None:
        if max_samples_per_location < 1:
            raise ValueError(
                f"max_samples_per_location must be >= 1: {max_samples_per_location}"
            )
        self._samples: Dict[LocationKey, Deque[float]] = defaultdict(
            lambda: deque(maxlen=max_samples_per_location)
        )

    def record_jitter(self, location: LocationKey, jitter_s: float) -> None:
        """Contribute one delay-variation sample (seconds, >= 0)."""
        if jitter_s < 0:
            raise ValueError(f"jitter must be >= 0: {jitter_s}")
        self._samples[location].append(jitter_s)

    def record_arrivals(
        self, location: LocationKey, interarrival_s: Sequence[float], period_s: float
    ) -> None:
        """Contribute a stream's arrival record.

        Jitter samples are |interarrival - nominal period|, the standard
        instantaneous delay-variation measure.
        """
        if period_s <= 0:
            raise ValueError(f"period must be positive: {period_s}")
        for gap in interarrival_s:
            self.record_jitter(location, abs(gap - period_s))

    def sample_count(self, location: LocationKey) -> int:
        """Samples held for ``location``."""
        return len(self._samples.get(location, ()))

    def recommend(
        self,
        location: LocationKey,
        *,
        quantile: float = 0.95,
        safety_factor: float = DEFAULT_SAFETY_FACTOR,
        fallback_s: float = UNINFORMED_DEFAULT_BUFFER_S,
    ) -> JitterBufferRecommendation:
        """Initial buffer size for a new stream at ``location``.

        With no shared data, falls back to the uninformed default — the
        recommendation then carries ``samples=0`` so callers can tell.
        """
        if not 0 < quantile < 1:
            raise ValueError(f"quantile must be in (0, 1): {quantile}")
        samples = self._samples.get(location)
        if not samples:
            return JitterBufferRecommendation(
                buffer_s=fallback_s, samples=0, p95_jitter_s=0.0
            )
        array = np.asarray(samples)
        p = float(np.quantile(array, quantile))
        return JitterBufferRecommendation(
            buffer_s=max(1e-4, p * safety_factor),
            samples=int(array.size),
            p95_jitter_s=float(np.quantile(array, 0.95)),
        )


def late_loss_rate(
    one_way_delays_s: Sequence[float], buffer_s: float
) -> float:
    """Fraction of packets arriving later than the playout deadline.

    The playout deadline is the *minimum* observed delay plus the buffer:
    a packet is late (lost to the codec) when its extra delay over the
    fastest packet exceeds the buffer.
    """
    if buffer_s < 0:
        raise ValueError(f"buffer must be >= 0: {buffer_s}")
    delays = np.asarray(one_way_delays_s, dtype=float)
    if delays.size == 0:
        return 0.0
    deadline = delays.min() + buffer_s
    return float(np.mean(delays > deadline))


def buffer_tradeoff_curve(
    one_way_delays_s: Sequence[float],
    buffer_sizes_s: Sequence[float],
) -> list:
    """(buffer, late-loss) pairs for plotting the latency/loss trade-off."""
    return [
        (float(b), late_loss_rate(one_way_delays_s, float(b)))
        for b in buffer_sizes_s
    ]

"""Command-line interface for the Phi reproduction.

Subcommands mirror the paper's experiments so results can be regenerated
without writing Python:

- ``repro-phi presets`` — list the built-in scenario presets;
- ``repro-phi cubic`` — run fixed-parameter Cubic on a preset;
- ``repro-phi phi`` — run Phi-coordinated Cubic (practical or ideal);
- ``repro-phi incremental`` — the Figure-4 partial deployment;
- ``repro-phi sweep`` — the Table-2 grid sweep via the parallel runner;
- ``repro-phi poison`` — the X6 Byzantine-context sweep (corruption
  severity x Byzantine report fraction, guarded or unguarded);
- ``repro-phi partition`` — the X7 replicated-control-plane sweep
  (replica count x partition severity x heal time, with failover);
- ``repro-phi ipfix`` — the Section-2.1 sharing analysis;
- ``repro-phi diagnose`` — the Figure-5 outage detection pipeline;
- ``repro-phi telemetry summarize`` — render a run manifest as a table;
- ``repro-phi check`` — differential/metamorphic correctness oracles and
  randomized invariant fuzzing (see :mod:`repro.simcheck`);
- ``repro-phi postmortem`` — per-flow timelines and stall attribution
  from a flight-recorder dump (see :mod:`repro.flightrec`);
- ``repro-phi bench gate`` — regression gate over ``BENCH_*.json``
  benchmark trajectories.

``cubic``, ``phi``, and ``sweep`` accept ``--profile`` (print the
hottest event callbacks); ``poison`` and ``partition`` accept
``--flightrec-out dump.jsonl`` (flight-record the sweep and dump it on
a safety-envelope violation).

``cubic``, ``phi``, and ``sweep`` accept ``--metrics-out manifest.json``
(telemetry run manifest: merged metrics, per-point provenance) and
``--trace-out trace.jsonl`` (sim/wall-time trace).

Examples::

    python -m repro.cli phi --preset table3-remy --mode practical --seed 3
    python -m repro.cli sweep --runs 2 --workers 4 --bench-json BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import glob
import json
import sys
from contextlib import ExitStack
from typing import List, Optional

import numpy as np

from . import flightrec, telemetry
from .diagnosis import (
    OutageSpec,
    TelemetryConfig,
    TelemetryGenerator,
    UnreachabilityDetector,
    localize,
)
from .experiments import (
    ALL_PRESETS,
    check_harm_demonstrated,
    check_partition_envelope,
    check_safety_envelope,
    run_cubic_fixed,
    run_incremental_deployment,
    run_parameter_sweep,
    run_partition_sweep,
    run_phi_cubic,
    run_poison_sweep,
)
from .flightrec.postmortem import DEFAULT_STALL_THRESHOLD_S, analyze_dump, render_text
from .ipfix import (
    EgressTrafficModel,
    IpfixCollector,
    IpfixSampler,
    TrafficModelConfig,
    sharing_stats,
)
from .phi import REFERENCE_POLICY, SharingMode
from .phi.optimizer import select_optimal
from .runner import (
    ConsoleProgress,
    ResilienceConfig,
    RetryPolicy,
    append_bench_entry,
    bench_entry,
    check_gate,
    load_trajectory,
)
from .simcheck import ViolationReport
from .simcheck.fuzz import draw_scenario, run_fuzz_case
from .simcheck.oracles import ORACLES, run_oracles
from .simnet.engine import WatchdogConfig
from .telemetry.manifest import (
    load_manifest,
    partition_manifest,
    poison_manifest,
    run_manifest,
    summarize_manifest,
    sweep_manifest,
    write_manifest,
)
from .transport import CubicParams
from .transport.cubic import cubic_sweep_grid

PRESETS = {preset.name: preset for preset in ALL_PRESETS}


def _telemetry_wanted(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "metrics_out", None) or getattr(args, "trace_out", None)
    )


def _write_telemetry_outputs(
    args: argparse.Namespace,
    tele: "telemetry.TelemetrySession",
    manifest: dict,
) -> None:
    if args.metrics_out:
        write_manifest(manifest, args.metrics_out)
        print(f"telemetry manifest: {args.metrics_out}")
    if args.trace_out:
        retained = tele.tracer.dump_jsonl(args.trace_out)
        print(f"telemetry trace: {args.trace_out} ({retained} record(s))")


def _print_profile(profile: Optional[dict], k: int = 10) -> None:
    """Render the top-``k`` hottest event callbacks of a profiled run."""
    if not profile:
        print("no profile collected", file=sys.stderr)
        return
    callbacks = profile.get("callbacks") or []
    print(f"profile: {profile['events']:,} events in "
          f"{profile['wall_seconds']:.2f}s wall "
          f"({profile['events_per_second']:,.0f} events/s)")
    print(f"{'callback':<58s} {'count':>10s} {'total s':>9s} {'avg us':>8s}")
    for row in callbacks[:k]:
        count = row["count"]
        avg_us = (row["total_s"] / count * 1e6) if count else 0.0
        print(f"{row['callback']:<58s} {count:>10,d} "
              f"{row['total_s']:>9.3f} {avg_us:>8.1f}")


def _preset_or_exit(name: str):
    preset = PRESETS.get(name)
    if preset is None:
        print(f"unknown preset {name!r}; available: {', '.join(sorted(PRESETS))}",
              file=sys.stderr)
        raise SystemExit(2)
    return preset


def _print_metrics(label: str, result) -> None:
    metrics = result.metrics
    print(f"{label:<30s} thr={metrics.throughput_mbps:6.2f} Mbps  "
          f"delay={metrics.queueing_delay_ms:7.1f} ms  "
          f"loss={metrics.loss_rate * 100:5.2f}%  "
          f"P_l={metrics.power_l:8.4f}  util={result.mean_utilization:4.2f}")


def cmd_presets(args: argparse.Namespace) -> int:
    for preset in ALL_PRESETS:
        workload = (
            "persistent bulk"
            if preset.workload is None
            else (f"on/off exp({preset.workload.mean_on_bytes / 1e3:.0f} KB) / "
                  f"exp({preset.workload.mean_off_s} s)")
        )
        print(f"{preset.name:<24s} n={preset.config.n_senders:<4d} "
              f"{preset.config.bottleneck_bandwidth_bps / 1e6:.0f} Mbps, "
              f"rtt {preset.config.rtt_s * 1e3:.0f} ms, {workload}")
        print(f"{'':<24s} {preset.description}")
    return 0


def _cubic_params(args: argparse.Namespace) -> CubicParams:
    return CubicParams(
        window_init=args.window_init,
        initial_ssthresh=args.ssthresh,
        beta=args.beta,
    )


def cmd_cubic(args: argparse.Namespace) -> int:
    preset = _preset_or_exit(args.preset)
    params = _cubic_params(args)
    with ExitStack() as stack:
        tele = None
        if _telemetry_wanted(args):
            tele = stack.enter_context(telemetry.use())
        result = run_cubic_fixed(
            params, preset, seed=args.seed, duration_s=args.duration,
            profile=args.profile,
        )
        if tele is not None:
            _write_telemetry_outputs(
                args,
                tele,
                run_manifest(
                    command="cubic",
                    preset_name=preset.name,
                    seed=args.seed,
                    duration_s=args.duration or preset.duration_s,
                    metrics=tele.registry.snapshot(),
                    result=result,
                    extra_config={"params": params.as_dict()},
                ),
            )
    _print_metrics(f"cubic wI={params.window_init:.0f} "
                   f"ssthr={params.initial_ssthresh:.0f} beta={params.beta}", result)
    if args.profile:
        _print_profile(result.profile)
    return 0


def cmd_phi(args: argparse.Namespace) -> int:
    preset = _preset_or_exit(args.preset)
    mode = SharingMode(args.mode)
    with ExitStack() as stack:
        tele = None
        if _telemetry_wanted(args):
            tele = stack.enter_context(telemetry.use())
        result = run_phi_cubic(
            REFERENCE_POLICY, preset, mode, seed=args.seed,
            duration_s=args.duration, profile=args.profile,
        )
        if tele is not None:
            _write_telemetry_outputs(
                args,
                tele,
                run_manifest(
                    command="phi",
                    preset_name=preset.name,
                    seed=args.seed,
                    duration_s=args.duration or preset.duration_s,
                    metrics=tele.registry.snapshot(),
                    result=result,
                    extra_config={"mode": mode.value},
                ),
            )
    _print_metrics(f"cubic-phi ({mode.value})", result)
    if args.profile:
        _print_profile(result.profile)
    return 0


def cmd_incremental(args: argparse.Namespace) -> int:
    preset = _preset_or_exit(args.preset)
    optimal = _cubic_params(args)
    outcome = run_incremental_deployment(
        optimal, preset, args.fraction, seed=args.seed, duration_s=args.duration
    )
    print(f"modified fraction: {outcome.modified_fraction:.0%}")
    for label, metrics in [
        ("modified", outcome.modified),
        ("unmodified", outcome.unmodified),
    ]:
        print(f"  {label:<12s} thr={metrics.throughput_mbps:6.2f} Mbps  "
              f"delay={metrics.queueing_delay_ms:7.1f} ms  "
              f"P_l={metrics.power_l:8.4f}")
    return 0


def _float_list(text: str) -> List[float]:
    try:
        values = [float(item) for item in text.split(",") if item.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated float list: {text!r}")
    if not values:
        raise argparse.ArgumentTypeError("need at least one value")
    return values


def _merge_point_profiles(points) -> Optional[dict]:
    """Aggregate per-point run-loop profiles into one sweep-wide view.

    Cached/resumed points carry no profile sidecar; they simply do not
    contribute (the header line reports what was actually measured).
    """
    events = 0
    wall = 0.0
    merged: dict = {}
    seen = False
    for point in points:
        profile = point.profile
        if not profile:
            continue
        seen = True
        events += profile.get("events", 0)
        wall += profile.get("wall_seconds", 0.0)
        for row in profile.get("callbacks") or []:
            stat = merged.setdefault(row["callback"], [0, 0.0])
            stat[0] += row["count"]
            stat[1] += row["total_s"]
    if not seen:
        return None
    ranked = sorted(merged.items(), key=lambda item: -item[1][1])
    return {
        "events": events,
        "wall_seconds": wall,
        "events_per_second": events / wall if wall > 0 else 0.0,
        "callbacks": [
            {"callback": name, "count": stat[0], "total_s": stat[1]}
            for name, stat in ranked
        ],
    }


def _sweep_resilience(args: argparse.Namespace) -> ResilienceConfig:
    return ResilienceConfig(
        retry=RetryPolicy(max_attempts=args.retries),
        point_timeout_s=args.point_timeout,
    )


def _sweep_watchdog(args: argparse.Namespace) -> Optional[WatchdogConfig]:
    if args.max_sim_events is None and args.max_sim_seconds is None:
        return None
    return WatchdogConfig(
        max_events=args.max_sim_events, max_wall_s=args.max_sim_seconds
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    preset = _preset_or_exit(args.preset)
    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.ssthresh_range or args.window_range or args.beta_range:
        grid = list(
            cubic_sweep_grid(
                ssthresh_range=args.ssthresh_range,
                window_init_range=args.window_range,
                beta_range=args.beta_range,
            )
        )
    else:
        grid = list(cubic_sweep_grid())

    progress = None if args.quiet else ConsoleProgress()
    common = dict(
        n_runs=args.runs,
        base_seed=args.seed,
        duration_s=args.duration,
        cache_dir=args.cache_dir,
        resilience=_sweep_resilience(args),
        watchdog=_sweep_watchdog(args),
    )
    with ExitStack() as stack:
        tele = None
        if _telemetry_wanted(args):
            tele = stack.enter_context(telemetry.use())
        parallel_outcome = run_parameter_sweep(
            preset,
            grid,
            n_workers=args.workers,
            progress=progress,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            flightrec_dir=args.flightrec_dir,
            profile=args.profile,
            **common,
        )
        if tele is not None:
            # One combined snapshot: the runner's own metrics (cache,
            # retries, per-point wall times) plus the deterministic merge
            # of every worker's simulation metrics.
            snapshots = [tele.registry.snapshot()]
            if parallel_outcome.telemetry is not None:
                snapshots.append(parallel_outcome.telemetry)
            _write_telemetry_outputs(
                args,
                tele,
                sweep_manifest(
                    parallel_outcome,
                    metrics=telemetry.merge_snapshots(snapshots),
                    command="sweep",
                    extra_config={"grid_points": len(grid)},
                ),
            )
    for quarantined in parallel_outcome.quarantined:
        print(f"QUARANTINED: {quarantined.describe()}", file=sys.stderr)
    serial_outcome = None
    if args.serial_check:
        # The check pass must recompute every point; reading the parallel
        # pass's cache or checkpoint back would compare them against
        # themselves.
        serial_outcome = run_parameter_sweep(
            preset, grid, parallel=False, **{**common, "cache_dir": None}
        )
        serial_by_key = {point.key: point for point in serial_outcome.points}
        mismatched = sum(
            1
            for point in parallel_outcome.points
            if point.key not in serial_by_key
            or not serial_by_key[point.key].identical_to(point)
        )
        if mismatched:
            print(f"DETERMINISM VIOLATION: {mismatched} point(s) differ "
                  f"between serial and parallel sweeps", file=sys.stderr)
            return 1
        survivors = len(parallel_outcome.points)
        print(f"serial check: all {survivors} surviving point(s) bit-identical"
              + ("" if parallel_outcome.complete
                 else f" ({len(parallel_outcome.quarantined)} quarantined)"))
        print(f"serial   {serial_outcome.wall_seconds:8.2f}s "
              f"({serial_outcome.events_per_second:,.0f} events/s)")
    speedup = (
        serial_outcome.wall_seconds / parallel_outcome.wall_seconds
        if serial_outcome is not None and parallel_outcome.wall_seconds > 0
        else None
    )
    print(f"parallel {parallel_outcome.wall_seconds:8.2f}s "
          f"({parallel_outcome.events_per_second:,.0f} events/s, "
          f"workers={parallel_outcome.workers})"
          + (f"  speedup={speedup:.2f}x" if speedup is not None else ""))
    print(f"points: total={len(grid) * args.runs} "
          f"cached={parallel_outcome.cache_hits} "
          f"resumed={parallel_outcome.checkpoint_reused} "
          f"recomputed={len(parallel_outcome.points) - parallel_outcome.cache_hits - parallel_outcome.checkpoint_reused} "
          f"retries={parallel_outcome.retries} "
          f"quarantined={len(parallel_outcome.quarantined)}"
          + (" [serial fallback]" if parallel_outcome.serial_fallback else ""))

    if args.profile:
        _print_profile(_merge_point_profiles(parallel_outcome.points))

    results = parallel_outcome.to_sweep_results()
    if results:
        best = select_optimal(results)
        p = best.params
        print(f"best point: wI={p.window_init:.0f} ssthr={p.initial_ssthresh:.0f} "
              f"beta={p.beta}  P_l={best.mean_power_l:.4f}")
    else:
        print("no surviving points; every point was quarantined", file=sys.stderr)

    if args.bench_json:
        # Gate on the machine-independent ratio when the serial check
        # ran; otherwise on raw parallel throughput (matches the legacy
        # fallback metric name so old trajectories stay comparable).
        if serial_outcome is not None and parallel_outcome.wall_seconds > 0:
            gate = (
                "speedup",
                serial_outcome.wall_seconds / parallel_outcome.wall_seconds,
                True,
            )
        else:
            gate = (
                "parallel.events_per_second",
                parallel_outcome.events_per_second,
                True,
            )
        entry = bench_entry(
            f"cli-sweep-{preset.name}",
            serial=serial_outcome,
            parallel=parallel_outcome,
            gate=gate,
            extra={
                "grid_points": len(grid),
                "n_runs": args.runs,
                "duration_s": args.duration,
            },
        )
        append_bench_entry(args.bench_json, entry)
        print(f"recorded trajectory entry in {args.bench_json}")
    return 0


def _int_list(text: str) -> List[int]:
    try:
        values = [int(item) for item in text.split(",") if item.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}")
    if not values:
        raise argparse.ArgumentTypeError("need at least one value")
    return values


def cmd_poison(args: argparse.Namespace) -> int:
    from .phi.corruption import CONTEXT_CORRUPTION_MODES

    preset = _preset_or_exit(args.preset)
    modes = [mode.strip() for mode in args.modes.split(",") if mode.strip()]
    unknown = [mode for mode in modes if mode not in CONTEXT_CORRUPTION_MODES]
    if unknown:
        print(f"unknown corruption mode(s): {', '.join(unknown)}; "
              f"available: {', '.join(sorted(CONTEXT_CORRUPTION_MODES))}",
              file=sys.stderr)
        return 2
    guarded = not args.unguarded
    common = dict(
        byzantine_fractions=args.byzantine,
        seeds=args.seeds,
        modes=modes,
        guarded=guarded,
        duration_s=args.duration,
    )
    with ExitStack() as stack:
        rec = None
        if args.flightrec_out:
            # Entered before telemetry.use so the metrics scope inherits
            # the recorder (serial sweeps run in this process).
            rec = stack.enter_context(
                flightrec.use(autodump_path=args.flightrec_out)
            )
        tele = None
        if _telemetry_wanted(args):
            tele = stack.enter_context(telemetry.use())
        outcome = run_poison_sweep(
            REFERENCE_POLICY, preset, args.severities,
            n_workers=args.workers, parallel=args.workers > 1, **common,
        )
        if tele is not None:
            snapshots = [tele.registry.snapshot()]
            if outcome.telemetry is not None:
                snapshots.append(outcome.telemetry)
            _write_telemetry_outputs(
                args,
                tele,
                poison_manifest(
                    outcome,
                    metrics=telemetry.merge_snapshots(snapshots),
                    extra_config={"expect_harm": args.expect_harm},
                ),
            )

    label = "guarded" if guarded else "UNGUARDED"
    print(f"poisoned sweep ({label}): preset={preset.name} "
          f"modes={','.join(modes)} seeds={','.join(map(str, args.seeds))}")
    if not args.quiet:
        for row in outcome.rows:
            distrusted = row.decision_counts.get("distrusted", 0)
            print(f"  sev={row.severity:<5g} byz={row.byzantine_fraction:<5g} "
                  f"P_l={row.mean_power_l:8.4f} ({row.power_vs_baseline:5.2f}x base)  "
                  f"thr={row.mean_throughput_mbps:6.2f} Mbps "
                  f"({row.throughput_vs_baseline:5.2f}x base)  "
                  f"rejected={sum(row.guard_rejections.values())} "
                  f"distrusted={distrusted} trust={row.mean_trust_score:.2f}")

    if args.serial_check:
        serial = run_poison_sweep(
            REFERENCE_POLICY, preset, args.severities,
            n_workers=1, parallel=False, collect_telemetry=False, **common,
        )
        mismatched = sum(
            1 for mine, theirs in zip(outcome.results, serial.results)
            if not mine.identical_to(theirs)
        )
        if mismatched or len(serial.results) != len(outcome.results):
            print(f"DETERMINISM VIOLATION: {mismatched} point(s) differ "
                  f"between serial and parallel poisoned sweeps", file=sys.stderr)
            return 1
        print(f"serial check: all {len(outcome.results)} point(s) bit-identical")

    if args.expect_harm:
        if not check_harm_demonstrated(outcome, rel_tol=args.tolerance):
            print("HARM NOT DEMONSTRATED: no row fell below the baseline "
                  "floor; the corruption harness is not injecting real harm",
                  file=sys.stderr)
            return 1
        print("harm demonstrated: corruption drove at least one row below "
              "the uncoordinated baseline")
        return 0
    violations = check_safety_envelope(outcome, rel_tol=args.tolerance)
    if violations:
        print("SAFETY ENVELOPE VIOLATED:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        if rec is not None:
            dumped = rec.maybe_autodump(f"envelope:poison:{len(violations)}")
            if dumped:
                print(f"flight recording: {dumped}", file=sys.stderr)
        return 1
    print(f"safety envelope holds: every row within {args.tolerance:.0%} of "
          f"the uncoordinated baseline on power and throughput")
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    from .phi.replication import ReadPolicy

    preset = _preset_or_exit(args.preset)
    try:
        read_policy = ReadPolicy(args.read_policy)
    except ValueError:
        print(f"unknown read policy {args.read_policy!r}; available: "
              f"{', '.join(p.value for p in ReadPolicy)}", file=sys.stderr)
        return 2
    common = dict(
        heal_times=args.heals,
        seeds=args.seeds,
        read_policy=read_policy,
        partition_start_s=args.partition_start,
        duration_s=args.duration,
    )
    with ExitStack() as stack:
        rec = None
        if args.flightrec_out:
            # Entered before telemetry.use so the metrics scope inherits
            # the recorder (serial sweeps run in this process).
            rec = stack.enter_context(
                flightrec.use(autodump_path=args.flightrec_out)
            )
        tele = None
        if _telemetry_wanted(args):
            tele = stack.enter_context(telemetry.use())
        outcome = run_partition_sweep(
            REFERENCE_POLICY, preset, args.replicas, args.severities,
            n_workers=args.workers, parallel=args.workers > 1, **common,
        )
        if tele is not None:
            snapshots = [tele.registry.snapshot()]
            if outcome.telemetry is not None:
                snapshots.append(outcome.telemetry)
            _write_telemetry_outputs(
                args,
                tele,
                partition_manifest(
                    outcome,
                    metrics=telemetry.merge_snapshots(snapshots),
                ),
            )

    print(f"partition sweep: preset={preset.name} "
          f"replicas={','.join(map(str, args.replicas))} "
          f"read={read_policy.value} "
          f"seeds={','.join(map(str, args.seeds))}")
    if not args.quiet:
        for row in outcome.rows:
            flag = "minority" if row.minority else (
                "total" if row.n_cut == row.n_replicas and row.n_cut else
                ("majority" if row.n_cut else "none")
            )
            print(f"  n={row.n_replicas} sev={row.severity:<5g} "
                  f"heal={row.heal_s:<4g} cut={row.n_cut} ({flag:<8s}) "
                  f"P_l={row.mean_power_l:8.4f} "
                  f"({row.power_vs_stock:5.2f}x stock, "
                  f"{row.power_vs_degraded:5.2f}x degraded)  "
                  f"thr={row.mean_throughput_mbps:6.2f} Mbps  "
                  f"fo={row.failovers} merges={row.anti_entropy_merges} "
                  f"maxdiv={row.max_divergence:.3f}")

    if args.serial_check:
        serial = run_partition_sweep(
            REFERENCE_POLICY, preset, args.replicas, args.severities,
            n_workers=1, parallel=False, collect_telemetry=False, **common,
        )
        mismatched = sum(
            1 for mine, theirs in zip(outcome.results, serial.results)
            if not mine.identical_to(theirs)
        )
        if mismatched or len(serial.results) != len(outcome.results):
            print(f"DETERMINISM VIOLATION: {mismatched} point(s) differ "
                  f"between serial and parallel partition sweeps",
                  file=sys.stderr)
            return 1
        print(f"serial check: all {len(outcome.results)} point(s) bit-identical")

    violations = check_partition_envelope(outcome, rel_tol=args.tolerance)
    if violations:
        print("SAFETY ENVELOPE VIOLATED:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        if rec is not None:
            dumped = rec.maybe_autodump(f"envelope:partition:{len(violations)}")
            if dumped:
                print(f"flight recording: {dumped}", file=sys.stderr)
        return 1
    print(f"safety envelope holds: every row within {args.tolerance:.0%} of "
          f"the stock floor; minority partitions within {args.tolerance:.0%} "
          f"of the single-server-outage baseline")
    return 0


def cmd_postmortem(args: argparse.Namespace) -> int:
    try:
        analysis = analyze_dump(
            args.dump, stall_threshold_s=args.stall_threshold
        )
    except (OSError, ValueError) as exc:
        print(f"cannot analyze dump: {exc}", file=sys.stderr)
        return 2
    if args.flow is not None:
        known = {entry["flow_id"] for entry in analysis["flows"]}
        if args.flow not in known:
            print(f"flow {args.flow} not in dump (flows: "
                  f"{', '.join(map(str, sorted(known))) or 'none'})",
                  file=sys.stderr)
            return 2
    if args.json:
        if args.flow is not None:
            analysis = dict(
                analysis,
                flows=[e for e in analysis["flows"] if e["flow_id"] == args.flow],
            )
        json.dump(analysis, sys.stdout, indent=2, allow_nan=False)
        print()
    else:
        print(render_text(analysis, flow=args.flow))
    return 0


def cmd_bench_gate(args: argparse.Namespace) -> int:
    paths = args.paths or sorted(glob.glob("BENCH_*.json"))
    if not paths:
        print("no trajectory files (no paths given, no BENCH_*.json here)",
              file=sys.stderr)
        return 2
    failed = 0
    for path in paths:
        trajectory = load_trajectory(path)
        result = check_gate(path, trajectory, args.budget)
        status = "PASS" if result.ok else "FAIL"
        print(f"{status}  {path}: {result.reason}")
        if not result.ok:
            failed += 1
    print(f"bench gate: {len(paths) - failed}/{len(paths)} trajectories "
          f"within budget ({args.budget:g}%)")
    return 1 if failed else 0


def cmd_telemetry_summarize(args: argparse.Namespace) -> int:
    try:
        manifest = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"cannot read manifest: {exc}", file=sys.stderr)
        return 2
    print(summarize_manifest(manifest, max_points=args.max_points))
    return 0


def cmd_ipfix(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    model = EgressTrafficModel(TrafficModelConfig(), rng)
    sampler = IpfixSampler(rng)
    collector = IpfixCollector()
    for batch in model.generate(args.minutes):
        collector.ingest_many(sampler.sample_flows(batch))
    stats = sharing_stats(collector)
    print(f"{stats.observations} sampled flow observations over "
          f"{args.minutes} minute(s)")
    for threshold in (1, 5, 10, 50, 100, 500):
        print(f"  sharing with >= {threshold:>3d} other flows: "
              f"{stats.fraction_at_least(threshold):6.1%}")
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    config = TelemetryConfig()
    train = 2 * config.bins_per_day
    outage = OutageSpec(
        start_bin=train + 100,
        duration_bins=args.outage_minutes // config.bin_minutes,
        severity=args.severity,
        asn=args.asn,
        metro=args.metro,
    )
    generator = TelemetryGenerator(config, np.random.default_rng(args.seed), [outage])
    series = generator.generate(train + config.bins_per_day)
    dips = UnreachabilityDetector(config.bins_per_day).detect(series, train)
    events = localize(dips, config.slice_keys())
    print(f"injected: asn={args.asn} metro={args.metro} "
          f"({args.outage_minutes} min, severity {args.severity:.0%})")
    if not events:
        print("no events detected")
        return 1
    for event in events:
        minutes = event.duration_bins * config.bin_minutes
        print(f"detected: {event.describe()} ({minutes} min, "
              f"drop {event.mean_drop_fraction:.0%})")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    names = args.oracles or None
    try:
        outcomes = run_oracles(names, duration_s=args.duration, seed=args.seed)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    failed = 0
    for outcome in outcomes:
        status = "PASS" if outcome.passed else "FAIL"
        print(f"{status}  {outcome.name:<22s} {outcome.details}")
        if not outcome.passed:
            failed += 1
            for failure in outcome.failures:
                print(f"      {failure}")

    fuzz_cases = []
    for index in range(args.fuzz):
        scenario = draw_scenario(args.seed + index)
        report = ViolationReport()
        case = {"scenario": scenario.as_dict(), "error": None}
        try:
            run_fuzz_case(scenario, check_report=report)
        except Exception as exc:  # noqa: BLE001 - surfaced in the artifact
            case["error"] = f"{type(exc).__name__}: {exc}"
        case["report"] = report.as_dict()
        case["passed"] = report.ok and case["error"] is None
        fuzz_cases.append(case)
        status = "PASS" if case["passed"] else "FAIL"
        print(f"{status}  fuzz seed={scenario.seed:<10d} "
              f"checks={report.checks_performed} "
              f"violations={len(report.violations)}"
              + (f"  error={case['error']}" if case["error"] else ""))
        if not case["passed"]:
            failed += 1
            for violation in report.violations:
                print(f"      {violation.invariant}: {violation.message}")

    if args.report:
        artifact = {
            "oracles": [outcome.as_dict() for outcome in outcomes],
            "fuzz": fuzz_cases,
            "failed": failed,
        }
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, allow_nan=False)
        print(f"check report: {args.report}")

    total = len(outcomes) + len(fuzz_cases)
    print(f"{total - failed}/{total} checks passed")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-phi",
        description="Reproduction CLI for 'Rethinking Networking for Five Computers'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("presets", help="list scenario presets").set_defaults(
        func=cmd_presets
    )

    def add_telemetry_args(p):
        p.add_argument("--metrics-out", default=None, dest="metrics_out",
                       help="write a telemetry run manifest (JSON) here")
        p.add_argument("--trace-out", default=None, dest="trace_out",
                       help="write the sim/wall-time trace (JSONL) here")

    def add_run_args(p, with_params=True):
        p.add_argument("--preset", default="table3-remy")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--duration", type=float, default=None,
                       help="simulated seconds (default: preset duration)")
        add_telemetry_args(p)
        if with_params:
            p.add_argument("--window-init", type=float, default=2.0,
                           dest="window_init")
            p.add_argument("--ssthresh", type=float, default=65536.0)
            p.add_argument("--beta", type=float, default=0.2)

    def add_profile_arg(p):
        p.add_argument("--profile", action="store_true",
                       help="time every event callback; print the hottest ones")

    cubic = sub.add_parser("cubic", help="fixed-parameter Cubic run")
    add_run_args(cubic)
    add_profile_arg(cubic)
    cubic.set_defaults(func=cmd_cubic)

    phi = sub.add_parser("phi", help="Phi-coordinated Cubic run")
    add_run_args(phi, with_params=False)
    add_profile_arg(phi)
    phi.add_argument("--mode", choices=["practical", "ideal"], default="practical")
    phi.set_defaults(func=cmd_phi)

    incremental = sub.add_parser("incremental", help="Figure-4 partial deployment")
    add_run_args(incremental)
    incremental.set_defaults(
        preset="fig4-incremental", window_init=16.0, ssthresh=64.0, beta=0.3
    )
    incremental.add_argument("--fraction", type=float, default=0.5)
    incremental.set_defaults(func=cmd_incremental)

    sweep = sub.add_parser("sweep", help="Table-2 grid sweep via repro.runner")
    sweep.add_argument("--preset", default="table3-remy")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--runs", type=int, default=8,
                       help="runs per grid point (paper uses 8)")
    sweep.add_argument("--duration", type=float, default=None,
                       help="simulated seconds per run (default: preset duration)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: usable CPU count)")
    sweep.add_argument("--cache-dir", default=None,
                       help="persist per-point results under this directory")
    sweep.add_argument("--ssthresh-range", type=_float_list, default=None,
                       help="comma-separated initial_ssthresh values")
    sweep.add_argument("--window-range", type=_float_list, default=None,
                       help="comma-separated windowInit_ values")
    sweep.add_argument("--beta-range", type=_float_list, default=None,
                       help="comma-separated beta values")
    sweep.add_argument("--checkpoint-dir", default=None,
                       help="journal completed points under this directory "
                            "(crash-safe, resumable)")
    sweep.add_argument("--resume", action="store_true",
                       help="replay an existing checkpoint journal; only "
                            "unfinished points are recomputed")
    sweep.add_argument("--retries", type=int, default=3,
                       help="attempts per point before quarantine (default 3)")
    sweep.add_argument("--point-timeout", type=float, default=None,
                       help="wall seconds per running point before the "
                            "supervisor kills and retries it")
    sweep.add_argument("--max-sim-events", type=int, default=None,
                       help="watchdog: abort a simulation after this many events")
    sweep.add_argument("--max-sim-seconds", type=float, default=None,
                       help="watchdog: abort a simulation after this much wall time")
    sweep.add_argument("--serial-check", action="store_true",
                       help="also run serially; verify bit-identical results")
    sweep.add_argument("--bench-json", default=None,
                       help="append timings to this BENCH trajectory file")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress the progress line")
    sweep.add_argument("--flightrec-dir", default=None, dest="flightrec_dir",
                       help="arm the per-point flight recorder; anomaly dumps "
                            "land here (default: the checkpoint dir, when set)")
    add_profile_arg(sweep)
    add_telemetry_args(sweep)
    sweep.set_defaults(func=cmd_sweep)

    poison = sub.add_parser(
        "poison", help="X6 Byzantine-context sweep (corruption x lying reporters)"
    )
    poison.add_argument("--preset", default="fig2a-low-utilization")
    poison.add_argument("--severities", type=_float_list, default=[0.0, 0.5, 1.0],
                        help="comma-separated per-lookup corruption probabilities")
    poison.add_argument("--byzantine", type=_float_list, default=[0.0],
                        help="comma-separated per-report poisoning probabilities")
    poison.add_argument("--seeds", type=_int_list, default=[0, 1],
                        help="comma-separated seeds (one run per seed per cell)")
    poison.add_argument("--modes", default="inflate",
                        help="comma-separated corruption modes "
                             "(bitflip,scale,frozen,replay,deflate,inflate,garbage)")
    poison.add_argument("--duration", type=float, default=None,
                        help="simulated seconds per run (default: preset duration)")
    poison.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = serial)")
    poison.add_argument("--unguarded", action="store_true",
                        help="strip the guard/trust/robust-aggregation defences "
                             "(the ablation)")
    poison.add_argument("--expect-harm", action="store_true", dest="expect_harm",
                        help="succeed only if some row falls below the baseline "
                             "floor (pair with --unguarded)")
    poison.add_argument("--tolerance", type=float, default=0.05,
                        help="relative envelope tolerance (default 0.05)")
    poison.add_argument("--serial-check", action="store_true",
                        help="also run serially; verify bit-identical results")
    poison.add_argument("--quiet", action="store_true",
                        help="suppress the per-row table")
    poison.add_argument("--flightrec-out", default=None, dest="flightrec_out",
                        help="record flight data; dump it here if the safety "
                             "envelope is violated")
    add_telemetry_args(poison)
    poison.set_defaults(func=cmd_poison)

    partition = sub.add_parser(
        "partition",
        help="X7 replicated-control-plane sweep (replicas x partition "
             "severity x heal time)",
    )
    partition.add_argument("--preset", default="fig2a-low-utilization")
    partition.add_argument("--replicas", type=_int_list, default=[1, 3],
                           help="comma-separated replica counts")
    partition.add_argument("--severities", type=_float_list,
                           default=[0.0, 0.34, 1.0],
                           help="comma-separated cut fractions in [0, 1] "
                                "(round(severity * n) replicas are severed)")
    partition.add_argument("--heals", type=_float_list, default=[10.0],
                           help="comma-separated partition durations in "
                                "simulated seconds")
    partition.add_argument("--partition-start", type=float, default=10.0,
                           dest="partition_start",
                           help="simulated second the partition begins")
    partition.add_argument("--seeds", type=_int_list, default=[0, 1],
                           help="comma-separated seeds (one run per seed "
                                "per cell)")
    partition.add_argument("--read-policy", default="any", dest="read_policy",
                           help="replica read policy: any, nearest, quorum")
    partition.add_argument("--duration", type=float, default=None,
                           help="simulated seconds per run (default: preset "
                                "duration)")
    partition.add_argument("--workers", type=int, default=1,
                           help="worker processes (1 = serial)")
    partition.add_argument("--tolerance", type=float, default=0.05,
                           help="relative envelope tolerance (default 0.05)")
    partition.add_argument("--serial-check", action="store_true",
                           help="also run serially; verify bit-identical "
                                "results")
    partition.add_argument("--quiet", action="store_true",
                           help="suppress the per-row table")
    partition.add_argument("--flightrec-out", default=None, dest="flightrec_out",
                           help="record flight data; dump it here if the "
                                "safety envelope is violated")
    add_telemetry_args(partition)
    partition.set_defaults(func=cmd_partition)

    postmortem = sub.add_parser(
        "postmortem",
        help="reconstruct per-flow timelines and stall causes from a "
             "flight-recorder dump",
    )
    postmortem.add_argument("dump", help="path to a flightrec-*.jsonl dump")
    postmortem.add_argument("--flow", type=int, default=None,
                            help="show only this flow id")
    postmortem.add_argument("--json", action="store_true",
                            help="emit the full analysis as JSON")
    postmortem.add_argument("--stall-threshold", type=float,
                            default=DEFAULT_STALL_THRESHOLD_S,
                            dest="stall_threshold",
                            help="inter-activity gap (sim seconds) that "
                                 "counts as a stall (default %(default)s)")
    postmortem.set_defaults(func=cmd_postmortem)

    bench = sub.add_parser("bench", help="benchmark trajectory tools")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    gate = bench_sub.add_parser(
        "gate",
        help="fail if the newest entry of any trajectory regresses past "
             "the budget",
    )
    gate.add_argument("paths", nargs="*",
                      help="trajectory files (default: ./BENCH_*.json)")
    gate.add_argument("--budget", type=float, default=10.0,
                      help="allowed regression vs the trajectory median, in "
                           "percent (default %(default)s)")
    gate.set_defaults(func=cmd_bench_gate)

    telemetry_parser = sub.add_parser(
        "telemetry", help="inspect telemetry artifacts"
    )
    telemetry_sub = telemetry_parser.add_subparsers(
        dest="telemetry_command", required=True
    )
    summarize = telemetry_sub.add_parser(
        "summarize", help="render a human table from a run manifest"
    )
    summarize.add_argument("manifest", help="path to a manifest JSON file")
    summarize.add_argument("--max-points", type=int, default=24,
                           help="per-point rows to show (default 24)")
    summarize.set_defaults(func=cmd_telemetry_summarize)

    ipfix = sub.add_parser("ipfix", help="Section-2.1 sharing analysis")
    ipfix.add_argument("--minutes", type=int, default=3)
    ipfix.add_argument("--seed", type=int, default=21)
    ipfix.set_defaults(func=cmd_ipfix)

    check = sub.add_parser(
        "check",
        help="simulation correctness oracles (differential/metamorphic/fuzz)",
    )
    check.add_argument(
        "--oracle", action="append", dest="oracles", metavar="NAME",
        choices=sorted(ORACLES),
        help="run only this oracle (repeatable; default: all)",
    )
    check.add_argument("--duration", type=float, default=10.0,
                       help="simulated seconds per oracle scenario")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--fuzz", type=int, default=0, metavar="N",
                       help="also run N random checked scenarios")
    check.add_argument("--report", default=None, metavar="PATH",
                       help="write a JSON violation/oracle report here")
    check.set_defaults(func=cmd_check)

    diagnose = sub.add_parser("diagnose", help="Figure-5 outage pipeline")
    diagnose.add_argument("--asn", default="isp-a")
    diagnose.add_argument("--metro", default="nyc")
    diagnose.add_argument("--outage-minutes", type=int, default=120)
    diagnose.add_argument("--severity", type=float, default=0.9)
    diagnose.add_argument("--seed", type=int, default=7)
    diagnose.set_defaults(func=cmd_diagnose)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""TCP receiver (sink): reassembly and cumulative ACK generation.

The sink ACKs every arriving data packet (ns-2's default ``TCPSink``
behaviour), echoing the data packet's send timestamp so the sender can
take RTT samples, and propagating the retransmit flag so Karn's rule can
be applied.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..simnet.engine import Simulator
from ..simnet.node import Host
from ..simnet.packet import FlowSpec, Packet, PacketKind, make_ack_packet


class ByteIntervalSet:
    """A set of received byte ranges with O(holes) merging.

    Intervals are half-open ``[start, end)`` and kept sorted and disjoint.
    The sink uses it to compute the cumulative ACK in the presence of
    holes left by drops.
    """

    def __init__(self) -> None:
        self._intervals: List[Tuple[int, int]] = []

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)`` and merge with any overlapping ranges."""
        if end <= start:
            return
        merged: List[Tuple[int, int]] = []
        placed = False
        for lo, hi in self._intervals:
            if hi < start or lo > end:
                if not placed and lo > end:
                    merged.append((start, end))
                    placed = True
                merged.append((lo, hi))
            else:
                start = min(start, lo)
                end = max(end, hi)
        if not placed:
            merged.append((start, end))
            merged.sort()
        self._intervals = merged

    def contiguous_from(self, origin: int = 0) -> int:
        """Highest byte such that ``[origin, result)`` is fully covered."""
        result = origin
        for lo, hi in self._intervals:
            if lo > result:
                break
            result = max(result, hi)
        return result

    def covers(self, offset: int) -> bool:
        """Whether byte ``offset`` lies inside a covered range."""
        for lo, hi in self._intervals:
            if lo <= offset < hi:
                return True
            if lo > offset:
                break
        return False

    def prune_below(self, origin: int) -> None:
        """Drop coverage below ``origin`` (bytes cumulatively ACKed)."""
        pruned = []
        for lo, hi in self._intervals:
            if hi <= origin:
                continue
            pruned.append((max(lo, origin), hi))
        self._intervals = pruned

    def intervals(self) -> List[Tuple[int, int]]:
        """The covered ranges, sorted and disjoint."""
        return list(self._intervals)

    @property
    def total_bytes(self) -> int:
        """Total covered bytes."""
        return sum(hi - lo for lo, hi in self._intervals)

    @property
    def fragment_count(self) -> int:
        """Number of disjoint ranges currently held."""
        return len(self._intervals)


class TcpSink:
    """Receiver endpoint for one flow: reassembles and ACKs."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        on_data: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.spec = spec
        self.on_data = on_data
        self.received = ByteIntervalSet()
        self.rcv_nxt = 0
        self.packets_received = 0
        self.duplicate_packets = 0
        self.bytes_received = 0
        host.register_agent(spec.flow_id, self)

    def handle_packet(self, packet: Packet) -> None:
        """Process an arriving DATA packet and emit a cumulative ACK."""
        if packet.kind is not PacketKind.DATA:
            return
        self.packets_received += 1
        seg_start = packet.seq
        seg_end = packet.seq + packet.payload_bytes
        before = self.received.total_bytes
        self.received.add(seg_start, seg_end)
        delivered = self.received.total_bytes - before
        self.bytes_received += delivered
        if delivered == 0:
            self.duplicate_packets += 1
        self.rcv_nxt = self.received.contiguous_from(0)
        if self.on_data is not None:
            self.on_data(packet)
        self._send_ack(packet)

    def _send_ack(self, data_packet: Packet) -> None:
        ack = make_ack_packet(
            self.spec.flow_id,
            self.spec.dst,
            self.spec.src,
            self.rcv_nxt,
            echo_timestamp=data_packet.sent_at,
        )
        ack.is_retransmit = data_packet.is_retransmit
        ack.sack_blocks = self._sack_blocks()
        self.host.send(ack)

    def _sack_blocks(self, max_blocks: int = 4) -> tuple:
        """Received ranges above the cumulative ACK (RFC 2018 style)."""
        blocks = [
            (lo, hi)
            for lo, hi in self.received._intervals
            if hi > self.rcv_nxt
        ]
        return tuple(blocks[:max_blocks])

    def close(self) -> None:
        """Unregister from the host."""
        self.host.unregister_agent(self.spec.flow_id)

"""Window-based TCP sender machinery.

This module implements everything the congestion-control flavours share:
segmentation, cumulative-ACK processing, duplicate-ACK fast retransmit,
NewReno-style fast recovery, RTO management with Karn's rule and
exponential backoff, and RTT estimation (RFC 6298).  Flavours (Cubic,
NewReno, RemyCC) plug in via the hook methods:

- :meth:`TcpSender._on_ack_congestion_avoidance`
- :meth:`TcpSender._on_loss_event`
- :meth:`TcpSender._on_timeout_event`

Windows are maintained in *segments* (floats), matching how the paper's
Table 1/2 parameters are expressed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..simnet.engine import EventHandle, Simulator
from ..telemetry import session as _telemetry_session
from ..simnet.node import Host
from ..simnet.packet import (
    MSS_BYTES,
    FlowSpec,
    Packet,
    PacketKind,
    make_data_packet,
)
from .sink import ByteIntervalSet

#: Lower bound on the retransmission timer, as in ns-2 (``minrto_``).
MIN_RTO_S = 0.2

#: Upper bound on the retransmission timer.
MAX_RTO_S = 60.0

#: Initial RTO before any RTT sample exists (RFC 6298 uses 1 s; we keep it).
INITIAL_RTO_S = 1.0

#: Classic duplicate-ACK threshold for fast retransmit.
DEFAULT_DUPACK_THRESHOLD = 3


@dataclass
class ConnectionStats:
    """Everything measured about one connection, reported to Phi at close.

    The paper's context-server protocol has each sender "report back to the
    context server once the connection ends"; this object is exactly that
    report.
    """

    flow_id: int
    start_time: float = 0.0
    end_time: float = 0.0
    bytes_goodput: int = 0
    bytes_sent: int = 0
    packets_sent: int = 0
    retransmits: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    rtt_samples: List[float] = field(default_factory=list)
    min_rtt: float = math.inf
    completed: bool = False

    @property
    def duration(self) -> float:
        """Wall-clock connection lifetime ("on" period duration)."""
        return max(0.0, self.end_time - self.start_time)

    @property
    def throughput_bps(self) -> float:
        """Goodput in bits/second over the connection lifetime."""
        if self.duration <= 0:
            return 0.0
        return self.bytes_goodput * 8.0 / self.duration

    @property
    def mean_rtt(self) -> float:
        """Mean of all RTT samples (0 when none were taken)."""
        if not self.rtt_samples:
            return 0.0
        return sum(self.rtt_samples) / len(self.rtt_samples)

    @property
    def mean_queueing_delay(self) -> float:
        """Mean RTT inflation over the minimum observed RTT.

        This is the paper's ``q`` signal: "the difference between the
        current RTT and the minimum RTT would give an indication of q".
        """
        if not self.rtt_samples or math.isinf(self.min_rtt):
            return 0.0
        return max(0.0, self.mean_rtt - self.min_rtt)

    @property
    def loss_indicator(self) -> float:
        """Retransmitted fraction of data packets — the ``l`` in P_l."""
        if self.packets_sent == 0:
            return 0.0
        return min(1.0, self.retransmits / self.packets_sent)


class RttEstimator:
    """RFC 6298 smoothed RTT / RTO estimation."""

    def __init__(
        self,
        min_rto: float = MIN_RTO_S,
        max_rto: float = MAX_RTO_S,
    ) -> None:
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.min_rto = min_rto
        self.max_rto = max_rto
        self._rto = INITIAL_RTO_S
        self.min_rtt = math.inf
        self.last_rtt: Optional[float] = None

    def observe(self, rtt: float) -> None:
        """Fold one RTT sample into the estimator."""
        if rtt <= 0:
            return
        self.last_rtt = rtt
        self.min_rtt = min(self.min_rtt, rtt)
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        # As in Linux, the variance term is floored at tcp_rto_min so a
        # steady RTT (rttvar -> 0) cannot produce an RTO that fires on the
        # slightest delay jitter.
        self._rto = self.srtt + max(4.0 * self.rttvar, self.min_rto)
        self._rto = min(self.max_rto, max(self.min_rto, self._rto))

    @property
    def rto(self) -> float:
        """Current retransmission timeout."""
        return self._rto

    def backoff(self) -> None:
        """Double the RTO after a timeout (Karn's exponential backoff)."""
        self._rto = min(self.max_rto, self._rto * 2.0)


class TcpSender:
    """Base window-based TCP sender transmitting a fixed-size flow.

    Subclasses implement a congestion-control *flavour* by overriding the
    three policy hooks.  The base class itself behaves as TCP Reno with
    NewReno partial-ACK recovery.

    Parameters
    ----------
    sim, host:
        Simulation engine and the host this agent sends from.
    spec:
        Flow identity (4-tuple).
    flow_size_bytes:
        Bytes of application data to deliver; the connection completes when
        all are cumulatively acknowledged.
    on_complete:
        Called with the final :class:`ConnectionStats` when done.
    window_init / initial_ssthresh:
        Initial congestion window and slow-start threshold, in segments —
        the paper's ``windowInit_`` and ``initial_ssthresh`` knobs.
    dupack_threshold:
        Duplicate ACKs needed to trigger fast retransmit (Section 3.2's
        informed-adaptation knob).
    """

    flavour = "reno"

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        flow_size_bytes: int,
        on_complete: Optional[Callable[["TcpSender"], None]] = None,
        *,
        window_init: float = 2.0,
        initial_ssthresh: float = 65536.0,
        dupack_threshold: int = DEFAULT_DUPACK_THRESHOLD,
        mss: int = MSS_BYTES,
    ) -> None:
        if flow_size_bytes <= 0:
            raise ValueError(f"flow_size_bytes must be positive, got {flow_size_bytes}")
        if window_init < 1:
            raise ValueError(f"window_init must be >= 1 segment, got {window_init}")
        if initial_ssthresh < 2:
            raise ValueError(
                f"initial_ssthresh must be >= 2 segments, got {initial_ssthresh}"
            )
        self.sim = sim
        self.host = host
        self.spec = spec
        self.flow_size = flow_size_bytes
        self.mss = mss
        self.on_complete = on_complete
        self.dupack_threshold = dupack_threshold

        self.cwnd = float(window_init)
        self.ssthresh = float(initial_ssthresh)
        self.window_init = float(window_init)

        self.snd_una = 0
        self.snd_nxt = 0
        self.dup_acks = 0
        self.in_recovery = False
        self.recovery_point = 0
        # SACK scoreboard: byte ranges above snd_una the receiver holds,
        # and segments already retransmitted in the current recovery.
        self._sacked = ByteIntervalSet()
        self._recovery_retransmitted: set = set()

        self.rtt = RttEstimator()
        self.stats = ConnectionStats(flow_id=spec.flow_id)
        self._rto_handle: Optional[EventHandle] = None
        self._started = False
        self._finished = False
        # Last integer cwnd sampled into the flight recorder; growth is
        # recorded only on integer crossings so a long flow cannot flood
        # the transport ring with sub-segment increments.
        self._flightrec_cwnd = int(self.cwnd)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Register on the host and begin transmitting."""
        if self._started:
            raise RuntimeError(f"flow {self.spec.flow_id} already started")
        self._started = True
        self.stats.start_time = self.sim.now
        self.host.register_agent(self.spec.flow_id, self)
        rec = _telemetry_session().flightrec
        if rec.enabled:
            rec.transport(
                "flow_start", self.sim.now, self.spec.flow_id,
                self.cwnd, self.ssthresh,
                detail={"flavour": self.flavour, "flow_size": self.flow_size},
            )
        self._send_available()

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.stats.end_time = self.sim.now
        self.stats.completed = True
        self.stats.bytes_goodput = self.flow_size
        self._cancel_rto()
        self.host.unregister_agent(self.spec.flow_id)
        rec = _telemetry_session().flightrec
        if rec.enabled:
            rec.transport(
                "flow_end", self.sim.now, self.spec.flow_id,
                self.cwnd, self.ssthresh,
                detail={"retransmits": self.stats.retransmits,
                        "timeouts": self.stats.timeouts},
            )
        if self.on_complete is not None:
            self.on_complete(self)

    def abort(self) -> None:
        """Tear the connection down without completing (end of simulation)."""
        if self._finished:
            return
        self._finished = True
        self.stats.end_time = self.sim.now
        self.stats.bytes_goodput = self.snd_una
        self._cancel_rto()
        self.host.unregister_agent(self.spec.flow_id)
        rec = _telemetry_session().flightrec
        if rec.enabled:
            rec.transport(
                "flow_abort", self.sim.now, self.spec.flow_id,
                self.cwnd, self.ssthresh,
                detail={"goodput_bytes": self.snd_una},
            )

    @property
    def finished(self) -> bool:
        """Whether the flow has completed or been aborted."""
        return self._finished

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    @property
    def flight_segments(self) -> float:
        """Outstanding, unacknowledged data in segments."""
        return (self.snd_nxt - self.snd_una) / self.mss

    @property
    def pipe_segments(self) -> float:
        """Estimated segments actually in the network: outstanding data,
        minus what the receiver has selectively acknowledged, plus hole
        retransmissions that are still unconfirmed."""
        in_flight = self.snd_nxt - self.snd_una - self._sacked.total_bytes
        retransmitted = sum(
            1
            for seq in self._recovery_retransmitted
            if seq >= self.snd_una and not self._sacked.covers(seq)
        )
        return max(0.0, in_flight / self.mss) + retransmitted

    def _can_send(self) -> bool:
        return (
            not self._finished
            and self.snd_nxt < self.flow_size
            and self.pipe_segments + 1.0 <= self.cwnd + 1e-9
        )

    def _send_available(self) -> None:
        while self._can_send():
            self._send_segment(self.snd_nxt, is_retransmit=False)
            self.snd_nxt = min(self.flow_size, self.snd_nxt + self.mss)

    def _send_segment(self, seq: int, is_retransmit: bool) -> None:
        payload = min(self.mss, self.flow_size - seq)
        packet = make_data_packet(
            self.spec.flow_id,
            self.spec.src,
            self.spec.dst,
            seq,
            payload,
            sent_at=self.sim.now,
            is_retransmit=is_retransmit,
        )
        self.stats.packets_sent += 1
        self.stats.bytes_sent += payload
        if is_retransmit:
            self.stats.retransmits += 1
        self.host.send(packet)
        self._arm_rto()

    # ------------------------------------------------------------------
    # RTO handling
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        self._cancel_rto()
        self._rto_handle = self.sim.schedule(self.rtt.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None

    def _on_rto(self) -> None:
        if self._finished or self.snd_una >= self.flow_size:
            return
        self.stats.timeouts += 1
        self.rtt.backoff()
        self.dup_acks = 0
        self.in_recovery = False
        self._sacked = ByteIntervalSet()
        self._recovery_retransmitted.clear()
        self._on_timeout_event()
        rec = _telemetry_session().flightrec
        if rec.enabled:
            rec.transport(
                "rto", self.sim.now, self.spec.flow_id,
                self.cwnd, self.ssthresh,
                detail={"rto_s": self.rtt.rto, "snd_una": self.snd_una},
            )
        # Go-back-N from the last cumulative ACK.
        self.snd_nxt = self.snd_una
        self._send_segment(self.snd_una, is_retransmit=True)
        self.snd_nxt = min(self.flow_size, self.snd_una + self.mss)

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        """Entry point for packets delivered by the host (ACKs only)."""
        if packet.kind is not PacketKind.ACK or self._finished:
            return
        self._process_ack(packet)

    def _process_ack(self, ack: Packet) -> None:
        # ``is not None`` rather than ``> 0``: an echo of exactly 0.0 is a
        # legitimate timestamp for a packet sent at sim time zero and must
        # still be RTT-sampled; only a missing echo is skipped.  Karn's
        # rule (no samples from retransmitted segments) is unchanged.
        if ack.echo_timestamp is not None and not ack.is_retransmit:
            self._sample_rtt(ack)
        for lo, hi in ack.sack_blocks:
            # Clamp to the current send horizon: after an RTO rewinds
            # snd_nxt (go-back-N) and clears the scoreboard, straggler
            # ACKs still in flight carry SACK blocks from before the
            # rewind; re-admitting bytes beyond snd_nxt would make the
            # scoreboard claim more than is outstanding (and go-back-N
            # retransmits that range regardless).
            hi = min(hi, self.snd_nxt)
            if lo < hi:
                self._sacked.add(lo, hi)
        self._sacked.prune_below(self.snd_una)
        if ack.seq > self.snd_una:
            self._on_new_ack(ack)
        elif ack.seq == self.snd_una and self.snd_nxt > self.snd_una:
            self._on_duplicate_ack()

    def _sample_rtt(self, ack: Packet) -> None:
        rtt = self.sim.now - ack.echo_timestamp
        if rtt <= 0:
            return
        self.rtt.observe(rtt)
        self.stats.rtt_samples.append(rtt)
        self.stats.min_rtt = min(self.stats.min_rtt, rtt)

    def _on_new_ack(self, ack: Packet) -> None:
        newly_acked = ack.seq - self.snd_una
        acked_segments = newly_acked / self.mss
        self.snd_una = ack.seq
        self._sacked.prune_below(self.snd_una)
        if self._recovery_retransmitted:
            self._recovery_retransmitted = {
                seq for seq in self._recovery_retransmitted if seq >= self.snd_una
            }
        self.dup_acks = 0

        if self.in_recovery:
            if self.snd_una >= self.recovery_point:
                self._exit_recovery()
            else:
                # Partial ACK: more holes remain; keep repairing them.
                self._recovery_send()
        else:
            self._grow_window(acked_segments)

        if self.snd_una >= self.flow_size:
            self._finish()
            return
        self._arm_rto()
        self._send_available()

    def _grow_window(self, acked_segments: float) -> None:
        if self.cwnd < self.ssthresh:
            # Slow start: one segment per ACKed segment, capped at ssthresh.
            self.cwnd = min(self.ssthresh, self.cwnd + acked_segments)
        else:
            self._on_ack_congestion_avoidance(acked_segments)
        sampled = int(self.cwnd)
        if sampled != self._flightrec_cwnd:
            self._flightrec_cwnd = sampled
            rec = _telemetry_session().flightrec
            if rec.enabled:
                rec.transport(
                    "cwnd", self.sim.now, self.spec.flow_id,
                    self.cwnd, self.ssthresh,
                )

    def _on_duplicate_ack(self) -> None:
        self.dup_acks += 1
        if self.in_recovery:
            # Each dupACK carries fresh SACK state; keep repairing and
            # let pipe-limited new data flow.
            self._recovery_send()
            self._send_available()
            return
        if self.dup_acks >= self.dupack_threshold:
            self._enter_recovery()

    def _enter_recovery(self) -> None:
        self.in_recovery = True
        self.recovery_point = self.snd_nxt
        self._recovery_retransmitted.clear()
        self.stats.fast_retransmits += 1
        self._on_loss_event()
        rec = _telemetry_session().flightrec
        if rec.enabled:
            rec.transport(
                "recovery_enter", self.sim.now, self.spec.flow_id,
                self.cwnd, self.ssthresh,
                detail={"recovery_point": self.recovery_point},
            )
        # The fast retransmit proper: repair the first hole immediately,
        # regardless of the pipe (it is what the 3 dupACKs announced).
        hole = self._next_hole()
        if hole is not None:
            self._send_segment(hole, is_retransmit=True)
            self._recovery_retransmitted.add(hole)
        self._recovery_send()

    def _exit_recovery(self) -> None:
        self.in_recovery = False
        self._recovery_retransmitted.clear()
        self.cwnd = max(1.0, self.ssthresh)
        self._flightrec_cwnd = int(self.cwnd)
        rec = _telemetry_session().flightrec
        if rec.enabled:
            rec.transport(
                "recovery_exit", self.sim.now, self.spec.flow_id,
                self.cwnd, self.ssthresh,
            )

    def _next_hole(self) -> Optional[int]:
        """First segment in [snd_una, recovery_point) that the receiver is
        missing and we have not retransmitted this recovery episode."""
        limit = min(self.recovery_point, self.flow_size)
        seq = self.snd_una
        while seq < limit:
            if seq in self._recovery_retransmitted or self._sacked.covers(seq):
                seq += self.mss
                continue
            return seq
        return None

    def _recovery_send(self) -> None:
        """SACK-based loss repair: retransmit known holes, pipe-limited."""
        while not self._finished and self.pipe_segments + 1.0 <= self.cwnd + 1e-9:
            hole = self._next_hole()
            if hole is None:
                break
            self._send_segment(hole, is_retransmit=True)
            self._recovery_retransmitted.add(hole)

    # ------------------------------------------------------------------
    # Flavour hooks (base class = Reno)
    # ------------------------------------------------------------------
    def _on_ack_congestion_avoidance(self, acked_segments: float) -> None:
        """Window growth per ACK once past slow start."""
        self.cwnd += acked_segments / max(self.cwnd, 1.0)

    def _on_loss_event(self) -> None:
        """Multiplicative decrease on a fast-retransmit loss event."""
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = self.ssthresh

    def _on_timeout_event(self) -> None:
        """Reaction to a retransmission timeout."""
        self.ssthresh = max(2.0, self.flight_segments / 2.0)
        self.cwnd = 1.0

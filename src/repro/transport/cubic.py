"""TCP Cubic with the paper's three tunable parameters.

The paper tunes exactly three knobs (its Tables 1 and 2):

- ``windowInit_`` — initial congestion window (default 2 segments),
- ``initial_ssthresh`` — initial slow-start threshold (default
  "arbitrarily large", 65K segments per RFC 5681),
- ``beta`` — where ``(1 - beta)`` is the multiplicative decrease factor
  applied on packet loss (default 0.2).

The window-growth law follows Ha, Rhee & Xu (2008): after a loss at
window ``W_max``, the window follows ``W(t) = C (t - K)^3 + W_max`` with
``K = cbrt(W_max * beta / C)``, plus the standard TCP-friendly region.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional

from ..simnet.engine import Simulator
from ..simnet.node import Host
from ..simnet.packet import MSS_BYTES, FlowSpec
from .base import DEFAULT_DUPACK_THRESHOLD, TcpSender

#: Cubic's scaling constant (segments / s^3), as in ns-2 and Linux.
CUBIC_C = 0.4

#: The paper sets the "arbitrarily large" default ssthresh to 65K segments.
DEFAULT_INITIAL_SSTHRESH = 65536.0

#: Default initial window, per Table 1.
DEFAULT_WINDOW_INIT = 2.0

#: Default beta, per Table 1 ((1 - 0.2) = 0.8 decrease factor).
DEFAULT_BETA = 0.2


@dataclass(frozen=True)
class CubicParams:
    """The tunable triple from the paper's Tables 1 and 2.

    Instances are immutable and hashable so they can key policy caches in
    the Phi context server.
    """

    window_init: float = DEFAULT_WINDOW_INIT
    initial_ssthresh: float = DEFAULT_INITIAL_SSTHRESH
    beta: float = DEFAULT_BETA

    def __post_init__(self) -> None:
        if self.window_init < 1:
            raise ValueError(f"window_init must be >= 1, got {self.window_init}")
        if self.initial_ssthresh < 2:
            raise ValueError(
                f"initial_ssthresh must be >= 2, got {self.initial_ssthresh}"
            )
        if not 0.0 < self.beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {self.beta}")

    @classmethod
    def default(cls) -> "CubicParams":
        """Table 1: the stock ns-2 TCP Cubic settings."""
        return cls()

    def with_updates(self, **kwargs: float) -> "CubicParams":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "window_init": self.window_init,
            "initial_ssthresh": self.initial_ssthresh,
            "beta": self.beta,
        }


def cubic_sweep_grid(
    ssthresh_range: Optional[List[float]] = None,
    window_init_range: Optional[List[float]] = None,
    beta_range: Optional[List[float]] = None,
) -> Iterator[CubicParams]:
    """Iterate the paper's Table-2 parameter grid.

    Defaults: ``initial_ssthresh`` and ``windowInit_`` sweep 2..256 in
    powers of two; ``beta`` sweeps 0.1..0.9 in steps of 0.1.
    """
    if ssthresh_range is None:
        ssthresh_range = [float(2 ** k) for k in range(1, 9)]  # 2..256
    if window_init_range is None:
        window_init_range = [float(2 ** k) for k in range(1, 9)]
    if beta_range is None:
        beta_range = [round(0.1 * k, 1) for k in range(1, 10)]  # 0.1..0.9
    for ssthresh in ssthresh_range:
        for window_init in window_init_range:
            for beta in beta_range:
                yield CubicParams(
                    window_init=window_init,
                    initial_ssthresh=ssthresh,
                    beta=beta,
                )


class CubicSender(TcpSender):
    """TCP Cubic sender."""

    flavour = "cubic"

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        flow_size_bytes: int,
        on_complete: Optional[Callable[[TcpSender], None]] = None,
        *,
        params: Optional[CubicParams] = None,
        tcp_friendliness: bool = True,
        dupack_threshold: int = DEFAULT_DUPACK_THRESHOLD,
        mss: int = MSS_BYTES,
    ) -> None:
        self.params = params if params is not None else CubicParams.default()
        super().__init__(
            sim,
            host,
            spec,
            flow_size_bytes,
            on_complete,
            window_init=self.params.window_init,
            initial_ssthresh=self.params.initial_ssthresh,
            dupack_threshold=dupack_threshold,
            mss=mss,
        )
        self.tcp_friendliness = tcp_friendliness
        self._w_max = 0.0
        self._epoch_start: Optional[float] = None
        self._k = 0.0
        self._origin_window = 0.0
        self._ack_count = 0
        self._tcp_window = 0.0

    # ------------------------------------------------------------------
    # Cubic window law
    # ------------------------------------------------------------------
    def _begin_epoch(self) -> None:
        self._epoch_start = self.sim.now
        self._ack_count = 0
        if self.cwnd < self._w_max:
            self._k = ((self._w_max - self.cwnd) / CUBIC_C) ** (1.0 / 3.0)
            self._origin_window = self._w_max
        else:
            self._k = 0.0
            self._origin_window = self.cwnd
        self._tcp_window = self.cwnd

    def _cubic_target(self, elapsed: float, rtt: float) -> float:
        t = elapsed + rtt
        return CUBIC_C * (t - self._k) ** 3 + self._origin_window

    def _tcp_friendly_window(self, elapsed: float, rtt: float) -> float:
        if rtt <= 0:
            return 0.0
        beta = self.params.beta
        # Ha, Rhee & Xu (2008), eq. 4: W_tcp(t) grows linearly from the
        # post-decrease window at the epoch start (``_tcp_window``), NOT
        # from ``_origin_window`` — the latter is W_max in the concave
        # region and equals cwnd in the convex region, which would let the
        # "friendly" estimate race ahead of Reno's actual pace.  Time is
        # evaluated at ``elapsed + rtt`` to match ``_cubic_target`` (both
        # laws predict the window one RTT ahead).
        t = elapsed + rtt
        return self._tcp_window + (3.0 * beta / (2.0 - beta)) * (t / rtt)

    def _on_ack_congestion_avoidance(self, acked_segments: float) -> None:
        if self._epoch_start is None:
            self._begin_epoch()
        assert self._epoch_start is not None
        rtt = self.rtt.srtt if self.rtt.srtt is not None else 0.1
        elapsed = self.sim.now - self._epoch_start
        target = self._cubic_target(elapsed, rtt)
        if target > self.cwnd:
            increment = (target - self.cwnd) / max(self.cwnd, 1.0)
            # Never grow faster than slow start (1 segment per ACK).
            self.cwnd += min(increment * acked_segments, acked_segments)
        else:
            # In the plateau region grow very slowly, as CUBIC does.
            self.cwnd += 0.01 * acked_segments / max(self.cwnd, 1.0)
        if self.tcp_friendliness:
            friendly = self._tcp_friendly_window(elapsed, rtt)
            if friendly > self.cwnd:
                self.cwnd = friendly

    def _on_loss_event(self) -> None:
        beta = self.params.beta
        self._w_max = self.cwnd
        self.cwnd = max(1.0, self.cwnd * (1.0 - beta))
        self.ssthresh = max(2.0, self.cwnd)
        self._epoch_start = None

    def _on_timeout_event(self) -> None:
        beta = self.params.beta
        self._w_max = max(self.cwnd, self.flight_segments)
        self.ssthresh = max(2.0, self.flight_segments * (1.0 - beta))
        self.cwnd = 1.0
        self._epoch_start = None


class NewRenoSender(TcpSender):
    """Classic NewReno sender (the base class's policies, named)."""

    flavour = "newreno"

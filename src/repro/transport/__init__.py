"""Transport agents: TCP flavours used in the paper's experiments.

- :class:`CubicSender` — TCP Cubic with the paper's three knobs
  (:class:`CubicParams`, Tables 1 and 2).
- :class:`NewRenoSender` — classical AIMD baseline.
- :class:`RemySender` — machine-learned congestion control (Remy), with
  the optional shared-utilization memory dimension (Remy-Phi).
- :class:`TcpSink` — the receiving endpoint.
"""

from .base import (
    DEFAULT_DUPACK_THRESHOLD,
    INITIAL_RTO_S,
    MIN_RTO_S,
    ConnectionStats,
    RttEstimator,
    TcpSender,
)
from .cubic import (
    CUBIC_C,
    DEFAULT_BETA,
    DEFAULT_INITIAL_SSTHRESH,
    DEFAULT_WINDOW_INIT,
    CubicParams,
    CubicSender,
    NewRenoSender,
    cubic_sweep_grid,
)
from .remycc import RemySender
from .sink import ByteIntervalSet, TcpSink
from .vegas import VegasSender

__all__ = [
    "CUBIC_C",
    "DEFAULT_BETA",
    "DEFAULT_DUPACK_THRESHOLD",
    "DEFAULT_INITIAL_SSTHRESH",
    "DEFAULT_WINDOW_INIT",
    "INITIAL_RTO_S",
    "MIN_RTO_S",
    "ByteIntervalSet",
    "ConnectionStats",
    "CubicParams",
    "CubicSender",
    "NewRenoSender",
    "RemySender",
    "RttEstimator",
    "TcpSender",
    "TcpSink",
    "VegasSender",
    "cubic_sweep_grid",
]

"""RemyCC: the machine-learned congestion controller, with Phi extension.

A RemyCC sender keeps a :class:`~repro.remy.memory.MemoryTracker`, and on
every ACK consults a :class:`~repro.remy.whisker.WhiskerTable` for an
action that sets its congestion window and pacing interval.  When a
``util_provider`` is supplied, the memory gains the paper's extra
dimension ``u`` (shared bottleneck utilization) — this is Remy-Phi.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..remy.memory import MemoryTracker
from ..remy.whisker import WhiskerTable
from ..simnet.engine import EventHandle, Simulator
from ..simnet.node import Host
from ..simnet.packet import MSS_BYTES, FlowSpec, Packet, PacketKind
from .base import TcpSender


class RemySender(TcpSender):
    """Window-and-pacing sender driven by a whisker table.

    Unlike the hand-crafted flavours, RemyCC has no explicit loss-event
    multiplicative decrease: the learned table reacts through the memory
    features (a loss shows up as RTT inflation and stretched ACK
    interarrivals).  The base class's retransmission machinery is kept for
    reliability; only the window policy differs.
    """

    flavour = "remy"

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        flow_size_bytes: int,
        on_complete: Optional[Callable[[TcpSender], None]] = None,
        *,
        table: WhiskerTable,
        util_provider: Optional[Callable[[], float]] = None,
        window_init: float = 2.0,
        mss: int = MSS_BYTES,
    ) -> None:
        super().__init__(
            sim,
            host,
            spec,
            flow_size_bytes,
            on_complete,
            window_init=window_init,
            initial_ssthresh=1e9,  # Remy has no slow-start threshold.
            mss=mss,
        )
        self.table = table
        self.tracker = MemoryTracker(util_provider)
        self.intersend_s = 0.0
        self._next_send_time = 0.0
        self._pacing_handle: Optional[EventHandle] = None

    # ------------------------------------------------------------------
    # Paced sending
    # ------------------------------------------------------------------
    def _send_available(self) -> None:
        self._pump()

    def _pump(self) -> None:
        while self._can_send():
            now = self.sim.now
            if now + 1e-12 < self._next_send_time:
                self._arm_pacing_timer()
                return
            self._send_segment(self.snd_nxt, is_retransmit=False)
            self.snd_nxt = min(self.flow_size, self.snd_nxt + self.mss)
            self._next_send_time = now + self.intersend_s

    def _arm_pacing_timer(self) -> None:
        if self._pacing_handle is not None and not self._pacing_handle.cancelled:
            return
        delay = max(0.0, self._next_send_time - self.sim.now)
        self._pacing_handle = self.sim.schedule(delay, self._pacing_fired)

    def _pacing_fired(self) -> None:
        self._pacing_handle = None
        if not self.finished:
            self._pump()

    # ------------------------------------------------------------------
    # Learned policy
    # ------------------------------------------------------------------
    def _process_ack(self, ack: Packet) -> None:
        # An ACK without an echoed send time carries no timing signal for
        # the whisker memory; fall through to base processing unchanged.
        if ack.kind is PacketKind.ACK and not self.finished and ack.echo_timestamp is not None:
            memory = self.tracker.on_ack(
                ack_arrival_time=self.sim.now,
                echoed_send_time=ack.echo_timestamp,
                last_rtt=self.rtt.last_rtt,
                min_rtt=None if self.rtt.min_rtt == float("inf") else self.rtt.min_rtt,
            )
            action = self.table.act(memory)
            self.cwnd = action.apply(self.cwnd)
            self.intersend_s = action.intersend_s
        super()._process_ack(ack)

    def _grow_window(self, acked_segments: float) -> None:
        # Window evolution is entirely whisker-driven (set in _process_ack).
        pass

    def _on_ack_congestion_avoidance(self, acked_segments: float) -> None:
        pass

    def _on_loss_event(self) -> None:
        # No hand-crafted decrease; keep ssthresh out of the way.
        self.ssthresh = 1e9

    def _on_timeout_event(self) -> None:
        # A timeout means the network state is stale: reset the memory and
        # fall back to the initial window, as Remy resets after idle.
        self.tracker.reset()
        self.cwnd = self.window_init
        self.intersend_s = 0.0
        self._next_send_time = self.sim.now

    def abort(self) -> None:
        if self._pacing_handle is not None:
            self._pacing_handle.cancel()
            self._pacing_handle = None
        super().abort()

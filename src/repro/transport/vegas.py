"""TCP Vegas: the classic delay-based baseline.

The paper cites Vegas [Brakmo, O'Malley & Peterson 1994] among the
congestion-control lineage it builds on.  Vegas is included as a second
hand-crafted baseline: it estimates the backlog it keeps in the
bottleneck queue from the difference between expected and actual rates
and holds it between ``alpha`` and ``beta`` packets — the same standing-
queue signal Phi's context server aggregates across senders.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..simnet.engine import Simulator
from ..simnet.node import Host
from ..simnet.packet import MSS_BYTES, FlowSpec
from .base import TcpSender

#: Vegas holds between alpha and beta segments queued at the bottleneck.
DEFAULT_ALPHA = 1.0
DEFAULT_BETA = 3.0


class VegasSender(TcpSender):
    """Delay-based sender: adjusts the window by the estimated backlog."""

    flavour = "vegas"

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        flow_size_bytes: int,
        on_complete: Optional[Callable[[TcpSender], None]] = None,
        *,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
        window_init: float = 2.0,
        initial_ssthresh: float = 65536.0,
        mss: int = MSS_BYTES,
    ) -> None:
        if not 0 < alpha <= beta:
            raise ValueError(f"need 0 < alpha <= beta, got {alpha} / {beta}")
        super().__init__(
            sim,
            host,
            spec,
            flow_size_bytes,
            on_complete,
            window_init=window_init,
            initial_ssthresh=initial_ssthresh,
            mss=mss,
        )
        self.alpha = alpha
        self.beta = beta

    def _estimated_backlog(self) -> Optional[float]:
        """Diff = (expected - actual) * baseRTT, in segments (Vegas)."""
        if self.rtt.srtt is None or self.rtt.min_rtt == float("inf"):
            return None
        base = self.rtt.min_rtt
        current = self.rtt.srtt
        if base <= 0 or current <= 0:
            return None
        expected_rate = self.cwnd / base
        actual_rate = self.cwnd / current
        return (expected_rate - actual_rate) * base

    def _on_ack_congestion_avoidance(self, acked_segments: float) -> None:
        backlog = self._estimated_backlog()
        if backlog is None:
            self.cwnd += acked_segments / max(self.cwnd, 1.0)
            return
        per_ack = acked_segments / max(self.cwnd, 1.0)
        if backlog < self.alpha:
            self.cwnd += per_ack
        elif backlog > self.beta:
            self.cwnd = max(2.0, self.cwnd - per_ack)
        # Between alpha and beta: hold steady.

    def _on_loss_event(self) -> None:
        # Vegas falls back to multiplicative decrease on an actual loss.
        self.ssthresh = max(2.0, self.cwnd * 0.75)
        self.cwnd = self.ssthresh

    def _on_timeout_event(self) -> None:
        self.ssthresh = max(2.0, self.flight_segments / 2.0)
        self.cwnd = 1.0

    def _grow_window(self, acked_segments: float) -> None:
        # Vegas also moderates slow start: leave it once a backlog shows.
        backlog = self._estimated_backlog()
        if self.cwnd < self.ssthresh and (backlog is None or backlog < self.beta):
            self.cwnd = min(self.ssthresh, self.cwnd + acked_segments / 2.0)
        else:
            self._on_ack_congestion_avoidance(acked_segments)
